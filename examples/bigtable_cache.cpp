/**
 * @file
 * Bigtable-like in-memory cache servers under software-defined far
 * memory (the paper's Section 6.4 case study).
 *
 * Runs an A/B pair of machine groups -- zswap disabled vs the
 * proactive control plane -- over a simulated day of diurnal load,
 * printing the hourly coverage of the experimental group and the
 * application-level impact at the end.
 *
 * Run: ./bigtable_cache [hours]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "node/machine.h"
#include "util/table.h"
#include "workload/job.h"

using namespace sdfm;

namespace {

struct Group
{
    std::vector<std::unique_ptr<Machine>> machines;
};

Group
make_group(FarMemoryPolicy policy, std::uint64_t seed)
{
    Group group;
    JobProfile bigtable = profile_by_name("bigtable");
    MachineConfig config;
    config.dram_pages = 192ull * kMiB / kPageSize;
    config.policy = policy;
    config.compression = CompressionMode::kModeled;
    Rng rng(seed);
    JobId next_id = policy == FarMemoryPolicy::kOff ? 1 : 1000;
    for (int m = 0; m < 4; ++m) {
        auto machine = std::make_unique<Machine>(
            static_cast<std::uint32_t>(m), config, rng.next_u64());
        for (int j = 0; j < 3; ++j) {
            auto job = std::make_unique<Job>(next_id++, bigtable,
                                             rng.next_u64(), 0);
            if (machine->has_capacity_for(job->memcg().num_pages()))
                machine->add_job(std::move(job));
        }
        group.machines.push_back(std::move(machine));
    }
    return group;
}

}  // namespace

int
main(int argc, char **argv)
{
    SimTime hours = argc > 1 ? std::atoll(argv[1]) : 26;
    if (hours <= 0)
        hours = 26;

    // Paired groups: identical workload seeds, only the policy
    // differs.
    Group control = make_group(FarMemoryPolicy::kOff, 7);
    Group experiment = make_group(FarMemoryPolicy::kProactive, 7);

    TablePrinter table({"hour", "coverage", "compressed memory",
                        "promotions/min"});
    std::uint64_t last_promotions = 0;
    for (SimTime now = 0; now < hours * kHour; now += kMinute) {
        for (auto &machine : control.machines)
            machine->step(now);
        std::uint64_t promotions = 0;
        for (auto &machine : experiment.machines) {
            machine->step(now);
            promotions += machine->counters().promotions;
        }
        if ((now + kMinute) % (2 * kHour) == 0) {
            std::uint64_t stored = 0, cold = 0, pool = 0;
            for (auto &machine : experiment.machines) {
                stored += machine->zswap_stored_pages();
                cold += machine->cold_pages_min_threshold();
                pool += machine->zswap_pool_pages();
            }
            double coverage =
                cold > 0 ? static_cast<double>(stored) /
                               static_cast<double>(cold)
                         : 0.0;
            table.add_row(
                {fmt_int(((now + kMinute) / kHour) % 24),
                 fmt_percent(coverage),
                 fmt_bytes(static_cast<double>(stored - pool) * kPageSize),
                 fmt_double(static_cast<double>(promotions -
                                                last_promotions) /
                                120.0, 1)});
            last_promotions = promotions;
        }
    }
    table.print(std::cout);

    // Application impact: share of job CPU lost to far-memory stalls.
    double app = 0.0, stalls = 0.0;
    for (auto &machine : experiment.machines) {
        for (const auto &job : machine->jobs()) {
            app += job->memcg().stats().app_cycles;
            stalls += job->memcg().stats().decompress_cycles;
        }
    }
    std::printf("\napplication slowdown from far-memory faults: %.4f%% "
                "(paper: IPC delta within noise)\n",
                app > 0.0 ? stalls / app * 100.0 : 0.0);
    return 0;
}
