/**
 * @file
 * Trace tooling: collect fleet telemetry to a file, or replay a
 * saved trace file through the fast far-memory model under arbitrary
 * control-plane parameters -- the offline what-if workflow an
 * operator would actually run (Section 5.3).
 *
 * Usage:
 *   ./trace_whatif collect <out.trace> [hours]
 *       run a small fleet and save its telemetry
 *   ./trace_whatif whatif <in.trace> <K> <S_seconds> [window]
 *       replay the trace under (K, S[, history window])
 *   ./trace_whatif autotune <in.trace> [trials]
 *       run the GP-Bandit search over the trace
 *   ./trace_whatif stats <in.trace>
 *       summarize the trace
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "autotune/autotuner.h"
#include "core/far_memory_system.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace sdfm;

namespace {

int
cmd_collect(const char *path, SimTime hours)
{
    FleetConfig config;
    config.num_clusters = 3;
    config.cluster.num_machines = 4;
    config.cluster.machine.dram_pages = 128ull * kMiB / kPageSize;
    config.cluster.machine.compression = CompressionMode::kModeled;
    config.cluster.mix = typical_fleet_mix();
    config.cluster.churn_per_hour = 0.1;
    config.seed = 29;
    FarMemorySystem fleet(config);
    fleet.populate();
    std::printf("running %llu jobs for %lld simulated hours...\n",
                static_cast<unsigned long long>(fleet.num_jobs()),
                static_cast<long long>(hours));
    fleet.run(hours * kHour);

    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    TraceLog trace = fleet.merged_trace();
    trace.save(out);
    std::printf("wrote %zu telemetry windows to %s\n", trace.size(), path);
    return 0;
}

bool
load_trace(const char *path, TraceLog *trace)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return false;
    }
    if (!trace->load(in)) {
        std::fprintf(stderr, "%s: malformed trace\n", path);
        return false;
    }
    return true;
}

int
cmd_whatif(const char *path, double k, SimTime s, long window)
{
    TraceLog trace;
    if (!load_trace(path, &trace))
        return 1;
    SloConfig slo;
    slo.percentile_k = k;
    slo.enable_delay = s;
    if (window > 0)
        slo.history_window = static_cast<std::size_t>(window);

    ThreadPool pool;
    FarMemoryModel model(&pool);
    ModelResult result = model.evaluate(trace.by_job(), slo);

    TablePrinter table({"metric", "value"});
    table.add_row({"K", fmt_double(k, 1)});
    table.add_row({"S", fmt_int(s) + "s"});
    table.add_row({"history window",
                   fmt_int(static_cast<long long>(slo.history_window))});
    table.add_row({"captured cold memory",
                   fmt_bytes(result.mean_captured_pages * kPageSize)});
    table.add_row({"captured fraction (mean job)",
                   fmt_percent(result.mean_captured_fraction)});
    table.add_row({"p98 promotion rate",
                   fmt_double(result.p98_promotion_rate * 100.0, 4) +
                       "%/min of WSS"});
    table.add_row({"meets SLO (0.2%/min)",
                   result.p98_promotion_rate <= 0.002 ? "yes" : "no"});
    table.add_row({"windows replayed",
                   fmt_int(static_cast<long long>(
                       result.total_windows))});
    table.print(std::cout);
    return 0;
}

int
cmd_autotune(const char *path, std::size_t trials)
{
    TraceLog trace;
    if (!load_trace(path, &trace))
        return 1;
    std::vector<JobTrace> traces = trace.by_job();
    ThreadPool pool;
    FarMemoryModel model(&pool);
    SloConfig base;
    AutotunerConfig config;
    config.iterations = trials;
    Autotuner tuner(config, base, &model, &traces);
    SloConfig best = tuner.run();
    std::printf("best configuration after %zu trials: K = %.1f, "
                "S = %lld s, window = %zu\n",
                tuner.history().size(), best.percentile_k,
                static_cast<long long>(best.enable_delay),
                best.history_window);
    ModelResult result = model.evaluate(traces, best);
    std::printf("  captured: %s, p98 promotion rate: %.4f%%/min\n",
                fmt_bytes(result.mean_captured_pages * kPageSize).c_str(),
                result.p98_promotion_rate * 100.0);
    return 0;
}

int
cmd_stats(const char *path)
{
    TraceLog trace;
    if (!load_trace(path, &trace))
        return 1;
    auto jobs = trace.by_job();
    std::uint64_t promos = 0, stores = 0, rejects = 0;
    double wss = 0.0;
    for (const TraceEntry &entry : trace.entries()) {
        promos += entry.sli.zswap_promotions_delta;
        stores += entry.sli.zswap_stores_delta;
        rejects += entry.sli.zswap_rejects_delta;
        wss += static_cast<double>(entry.wss_pages);
    }
    std::printf("windows: %zu   jobs: %zu\n", trace.size(), jobs.size());
    std::printf("promotions: %llu   stores: %llu   rejects: %llu\n",
                static_cast<unsigned long long>(promos),
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(rejects));
    if (!trace.entries().empty()) {
        std::printf("mean WSS per window: %s\n",
                    fmt_bytes(wss /
                              static_cast<double>(trace.size()) *
                              kPageSize)
                        .c_str());
    }
    return 0;
}

void
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_whatif collect <out.trace> [hours]\n"
                 "  trace_whatif whatif <in.trace> <K> <S_seconds> "
                 "[window]\n"
                 "  trace_whatif autotune <in.trace> [trials]\n"
                 "  trace_whatif stats <in.trace>\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return 2;
    }
    if (std::strcmp(argv[1], "collect") == 0) {
        SimTime hours = argc > 3 ? std::atoll(argv[3]) : 4;
        return cmd_collect(argv[2], hours > 0 ? hours : 4);
    }
    if (std::strcmp(argv[1], "whatif") == 0 && argc >= 5) {
        long window = argc > 5 ? std::atol(argv[5]) : 0;
        return cmd_whatif(argv[2], std::atof(argv[3]),
                          std::atoll(argv[4]), window);
    }
    if (std::strcmp(argv[1], "autotune") == 0) {
        std::size_t trials =
            argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 16;
        return cmd_autotune(argv[2], trials == 0 ? 16 : trials);
    }
    if (std::strcmp(argv[1], "stats") == 0)
        return cmd_stats(argv[2]);
    usage();
    return 2;
}
