/**
 * @file
 * Quickstart: one machine, a handful of jobs, the proactive
 * software-defined far-memory control plane, one simulated hour.
 *
 * Shows the core loop of the public API: configure a Machine, add
 * Jobs, step the simulation, and read back coverage, promotion-rate
 * SLI, and CPU-overhead statistics.
 *
 * Run: ./quickstart
 */

#include <cstdio>
#include <iostream>

#include "node/machine.h"
#include "telemetry/exporter.h"
#include "util/table.h"
#include "workload/job.h"
#include "workload/job_profile.h"

using namespace sdfm;

int
main()
{
    // A machine with 2 GiB of DRAM running the paper's proactive
    // policy with the production SLO (P = 0.2%/min, K = 98, S = 300s).
    MachineConfig config;
    config.dram_pages = 2ull * kGiB / kPageSize;
    config.policy = FarMemoryPolicy::kProactive;
    config.compression = CompressionMode::kReal;  // run szo for real

    Machine machine(/*machine_id=*/0, config, /*seed=*/42);

    // Schedule a few jobs from different archetypes.
    FleetMix mix = typical_fleet_mix();
    Rng rng(7);
    JobId next_id = 1;
    for (int i = 0; i < 8; ++i) {
        const JobProfile &profile = mix.profiles[mix.sample(rng)];
        auto job = std::make_unique<Job>(next_id++, profile,
                                         rng.next_u64(), /*start=*/0);
        if (machine.has_capacity_for(job->memcg().num_pages()))
            machine.add_job(std::move(job));
    }
    std::printf("scheduled %zu jobs\n", machine.jobs().size());

    // One simulated hour, one control period per step.
    for (SimTime now = 0; now < kHour; now += config.control_period)
        machine.step(now);

    // Report.
    TablePrinter table({"metric", "value"});
    table.add_row({"jobs", fmt_int(static_cast<long long>(
                               machine.jobs().size()))});
    table.add_row({"resident", fmt_bytes(static_cast<double>(
                                   machine.resident_pages()) * kPageSize)});
    table.add_row({"zswap stored (uncompressed)",
                   fmt_bytes(static_cast<double>(
                                 machine.zswap_stored_pages()) *
                             kPageSize)});
    table.add_row({"zswap pool (actual DRAM)",
                   fmt_bytes(static_cast<double>(machine.zswap().
                                                 pool_bytes()))});
    table.add_row({"cold pages (T=120s)",
                   fmt_int(static_cast<long long>(
                       machine.cold_pages_min_threshold()))});
    table.add_row({"cold memory coverage",
                   fmt_percent(machine.cold_memory_coverage())});

    const ZswapStats &zs = machine.zswap().stats();
    table.add_row({"zswap stores", fmt_int(static_cast<long long>(
                                       zs.stores))});
    table.add_row({"zswap rejects (incompressible)",
                   fmt_int(static_cast<long long>(zs.rejects))});
    table.add_row({"zswap promotions", fmt_int(static_cast<long long>(
                                           zs.promotions))});

    double app_cycles = 0.0;
    for (const auto &job : machine.jobs())
        app_cycles += job->memcg().stats().app_cycles;
    if (app_cycles > 0.0) {
        table.add_row({"compress CPU overhead",
                       fmt_percent(zs.compress_cycles / app_cycles, 4)});
        table.add_row({"decompress CPU overhead",
                       fmt_percent(zs.decompress_cycles / app_cycles, 4)});
    }
    table.print(std::cout);

    // Every subsystem also exports named metrics through the machine's
    // registry (src/telemetry/); this is the same summary the
    // metrics_dump probe prints for a whole fleet.
    std::printf("\ntelemetry summary:\n");
    print_metrics_summary(std::cout, machine.metrics().snapshot());
    return 0;
}
