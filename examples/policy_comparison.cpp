/**
 * @file
 * Policy comparison on one machine: the paper's proactive SLO-driven
 * control plane vs upstream Linux's reactive zswap vs a fixed
 * threshold vs no far memory (Sections 3.2 and 4).
 *
 * Prints, per policy: memory freed, promotion behaviour, CPU
 * overhead, and allocation stalls -- the trade-offs that motivated
 * the paper's design.
 *
 * Run: ./policy_comparison
 */

#include <iostream>

#include "node/machine.h"
#include "util/table.h"
#include "workload/job.h"

using namespace sdfm;

namespace {

struct Row
{
    std::string freed;
    std::string promotions;
    std::string overhead;
    std::string stalls;
    std::string evictions;
};

Row
run_policy(FarMemoryPolicy policy)
{
    MachineConfig config;
    config.dram_pages = 256ull * kMiB / kPageSize;
    config.policy = policy;
    config.compression = CompressionMode::kModeled;
    config.static_threshold = age_to_bucket(30 * kMinute);
    Machine machine(0, config, 99);

    // Pack to ~90% so the reactive baseline has something to react
    // to as working sets breathe.
    FleetMix mix = typical_fleet_mix();
    Rng rng(5);
    JobId next_id = 1;
    while (machine.resident_pages() <
           config.dram_pages * 9 / 10) {
        auto job = std::make_unique<Job>(
            next_id++, mix.profiles[mix.sample(rng)], rng.next_u64(), 0);
        if (machine.resident_pages() + job->memcg().num_pages() >
            config.dram_pages) {
            break;
        }
        machine.add_job(std::move(job));
    }

    for (SimTime now = 0; now < 4 * kHour; now += kMinute)
        machine.step(now);

    double app = 0.0, stalls = 0.0;
    for (const auto &job : machine.jobs()) {
        app += job->memcg().stats().app_cycles;
        stalls += job->memcg().stats().direct_stall_cycles;
    }
    const ZswapStats &zs = machine.zswap().stats();
    double freed =
        (static_cast<double>(machine.zswap_stored_pages()) -
         static_cast<double>(machine.zswap_pool_pages())) *
        kPageSize;

    Row row;
    row.freed = fmt_bytes(freed);
    row.promotions = fmt_int(static_cast<long long>(zs.promotions));
    row.overhead =
        app > 0.0
            ? fmt_percent((zs.compress_cycles + zs.decompress_cycles) /
                              app, 3)
            : "-";
    row.stalls = app > 0.0 ? fmt_percent(stalls / app, 4) : "-";
    row.evictions =
        fmt_int(static_cast<long long>(machine.counters().evictions));
    return row;
}

}  // namespace

int
main()
{
    TablePrinter table({"policy", "DRAM freed", "promotions",
                        "zswap CPU overhead", "alloc stalls",
                        "evictions"});
    struct Entry
    {
        FarMemoryPolicy policy;
        const char *name;
    };
    const Entry entries[] = {
        {FarMemoryPolicy::kOff, "off"},
        {FarMemoryPolicy::kReactive, "reactive (upstream zswap)"},
        {FarMemoryPolicy::kStatic, "static threshold (30 min)"},
        {FarMemoryPolicy::kProactive, "proactive + SLO (paper)"},
    };
    for (const Entry &entry : entries) {
        Row row = run_policy(entry.policy);
        table.add_row({entry.name, row.freed, row.promotions,
                       row.overhead, row.stalls, row.evictions});
    }
    table.print(std::cout);

    std::cout << "\nthe paper's design point: proactive frees memory "
                 "continuously with bounded promotions and zero "
                 "allocation stalls; reactive only acts under "
                 "pressure and stalls allocating tasks when it does.\n";
    return 0;
}
