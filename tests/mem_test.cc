/**
 * @file
 * Tests for the kernel substrate: memcg page-state transitions,
 * kstaled aging and histogram semantics (including the paper's
 * Section 4.3 worked example), kreclaimd eligibility and thresholds,
 * and the zswap store/load/drop paths.
 */

#include <gtest/gtest.h>

#include "compression/compressor.h"
#include "mem/kreclaimd.h"
#include "mem/kstaled.h"
#include "mem/memcg.h"
#include "mem/zswap.h"
#include "util/logging.h"

namespace sdfm {
namespace {

/** Everything-compressible mix for deterministic reclaim tests. */
ContentMix
compressible_mix()
{
    return ContentMix(0.0, 0.0, 1.0, 0.0, 0.0);
}

ContentMix
incompressible_mix()
{
    return ContentMix(0.0, 0.0, 0.0, 0.0, 1.0);
}

struct Rig
{
    explicit Rig(std::uint32_t pages,
                 ContentMix mix = compressible_mix(),
                 CompressionMode mode = CompressionMode::kModeled)
        : compressor(make_compressor(mode)),
          zswap(compressor.get(), 1),
          cg(1, pages, 42, mix, 0)
    {
    }

    std::unique_ptr<Compressor> compressor;
    Zswap zswap;
    Memcg cg;
    Kstaled kstaled;
    Kreclaimd kreclaimd;
};

// --------------------------------------------------------------- memcg

TEST(MemcgTest, InitialState)
{
    Rig rig(100);
    EXPECT_EQ(rig.cg.resident_pages(), 100u);
    EXPECT_EQ(rig.cg.zswap_pages(), 0u);
    // Before the first scan, all pages count as working set.
    EXPECT_EQ(rig.cg.wss_pages(), 100u);
    EXPECT_EQ(rig.cg.cold_pages_min_threshold(), 0u);
}

TEST(MemcgTest, TouchSetsAccessedBit)
{
    Rig rig(10);
    rig.cg.touch(3, /*is_write=*/false, rig.zswap);
    EXPECT_TRUE(rig.cg.page_test(3, kPageAccessed));
    EXPECT_FALSE(rig.cg.page_test(3, kPageDirty));
}

TEST(MemcgTest, WriteSetsDirtyAndRotatesVersion)
{
    Rig rig(10);
    std::uint64_t seed_before = rig.cg.content_seed_of(3);
    rig.cg.touch(3, /*is_write=*/true, rig.zswap);
    EXPECT_TRUE(rig.cg.page_test(3, kPageDirty));
    EXPECT_NE(rig.cg.content_seed_of(3), seed_before);
}

TEST(MemcgTest, UnevictableFlag)
{
    Rig rig(10);
    rig.cg.set_unevictable(5, true);
    EXPECT_TRUE(rig.cg.page_test(5, kPageUnevictable));
    rig.cg.set_unevictable(5, false);
    EXPECT_FALSE(rig.cg.page_test(5, kPageUnevictable));
}

// ------------------------------------------------------------- kstaled

TEST(KstaledTest, UntouchedPagesAge)
{
    Rig rig(50);
    ScanResult scan = rig.kstaled.scan(rig.cg);
    EXPECT_EQ(scan.pages_scanned, 50u);
    EXPECT_EQ(scan.accessed_pages, 0u);
    for (PageId p = 0; p < 50; ++p)
        EXPECT_EQ(rig.cg.page_age(p), 1);
    EXPECT_EQ(rig.cg.cold_pages_min_threshold(), 50u);
    EXPECT_EQ(rig.cg.wss_pages(), 0u);
}

TEST(KstaledTest, AccessedPageResetsToZero)
{
    Rig rig(10);
    rig.kstaled.scan(rig.cg);  // everyone at age 1
    rig.cg.touch(4, false, rig.zswap);
    ScanResult scan = rig.kstaled.scan(rig.cg);
    EXPECT_EQ(scan.accessed_pages, 1u);
    EXPECT_EQ(rig.cg.page_age(4), 0);
    EXPECT_FALSE(rig.cg.page_test(4, kPageAccessed));
    EXPECT_EQ(rig.cg.page_age(5), 2);
}

TEST(KstaledTest, AgeSaturatesAt255)
{
    Rig rig(1);
    for (int i = 0; i < 300; ++i)
        rig.kstaled.scan(rig.cg);
    EXPECT_EQ(rig.cg.page_age(0), 255);
}

TEST(KstaledTest, PromotionHistogramRecordsPreScanAge)
{
    Rig rig(1);
    // Age the page to 5 scan periods, then touch it.
    for (int i = 0; i < 5; ++i)
        rig.kstaled.scan(rig.cg);
    EXPECT_EQ(rig.cg.page_age(0), 5);
    rig.cg.touch(0, false, rig.zswap);
    rig.kstaled.scan(rig.cg);
    EXPECT_EQ(rig.cg.promo_hist().at(5), 1u);
    EXPECT_EQ(rig.cg.promo_hist().total(), 1u);
}

/**
 * The paper's Section 4.3 example: pages A and B last accessed 5 and
 * 10 minutes ago, both re-accessed 1 minute ago. The promotion
 * histogram must report 1 promotion under T = 8 min and 2 under
 * T = 2 min.
 */
TEST(KstaledTest, PaperWorkedExample)
{
    Rig rig(2);
    const PageId a = 0, b = 1;
    // Construct the example's state directly: A idle 5 minutes
    // (age 2 scan periods of 120 s), B idle 10 minutes (age 5), then
    // both re-accessed one minute ago.
    rig.cg.set_page_age(a, age_to_bucket(5 * 60));
    rig.cg.set_page_age(b, age_to_bucket(10 * 60));
    rig.cg.touch(a, false, rig.zswap);
    rig.cg.touch(b, false, rig.zswap);
    rig.kstaled.scan(rig.cg);  // records the pre-access ages
    // Under T = 8 min only B would have been a promotion; under
    // T = 2 min both would (1 and 2 promotions/min respectively in
    // the paper's phrasing).
    const AgeHistogram &promo = rig.cg.promo_hist();
    EXPECT_EQ(promo.count_at_least(age_to_bucket(8 * 60)), 1u);
    EXPECT_EQ(promo.count_at_least(age_to_bucket(2 * 60)), 2u);
}

TEST(KstaledTest, DirtyClearsIncompressibleMark)
{
    Rig rig(1);
    rig.cg.page_set(0, kPageIncompressible);
    rig.cg.touch(0, /*is_write=*/true, rig.zswap);
    rig.kstaled.scan(rig.cg);
    EXPECT_FALSE(rig.cg.page_test(0, kPageIncompressible));
    EXPECT_FALSE(rig.cg.page_test(0, kPageDirty));
}

TEST(KstaledTest, ReadDoesNotClearIncompressible)
{
    Rig rig(1);
    rig.cg.page_set(0, kPageIncompressible);
    rig.cg.touch(0, /*is_write=*/false, rig.zswap);
    rig.kstaled.scan(rig.cg);
    EXPECT_TRUE(rig.cg.page_test(0, kPageIncompressible));
}

TEST(KstaledTest, ColdHistogramRebuilt)
{
    Rig rig(4);
    rig.kstaled.scan(rig.cg);
    rig.cg.touch(0, false, rig.zswap);
    rig.kstaled.scan(rig.cg);
    const AgeHistogram &cold = rig.cg.cold_hist();
    EXPECT_EQ(cold.at(0), 1u);  // the touched page
    EXPECT_EQ(cold.at(2), 3u);  // the others aged twice
    EXPECT_EQ(cold.total(), 4u);
}

TEST(KstaledTest, ScanCpuCost)
{
    KstaledParams params;
    params.cycles_per_page = 100.0;
    Kstaled kstaled(params);
    Rig rig(1000);
    ScanResult scan = kstaled.scan(rig.cg);
    EXPECT_DOUBLE_EQ(scan.cpu_cycles, 100000.0);
}

TEST(KstaledStride, VisitsOneStripePerScan)
{
    KstaledParams params;
    params.scan_stride = 4;
    Kstaled kstaled(params);
    Rig rig(16);
    ScanResult scan = kstaled.scan(rig.cg, /*phase=*/0);
    EXPECT_EQ(scan.pages_scanned, 4u);
    // Visited pages aged by the stride; others untouched.
    EXPECT_EQ(rig.cg.page_age(0), 4);
    EXPECT_EQ(rig.cg.page_age(1), 0);
    EXPECT_EQ(rig.cg.page_age(4), 4);
}

TEST(KstaledStride, FullCoverageAfterStrideScans)
{
    KstaledParams params;
    params.scan_stride = 4;
    Kstaled kstaled(params);
    Rig rig(17);
    for (std::uint32_t phase = 0; phase < 4; ++phase)
        kstaled.scan(rig.cg, phase);
    for (PageId p = 0; p < 17; ++p)
        EXPECT_EQ(rig.cg.page_age(p), 4) << p;
}

TEST(KstaledStride, StickyAccessedBitPreservesRecency)
{
    KstaledParams params;
    params.scan_stride = 4;
    Kstaled kstaled(params);
    Rig rig(8);
    // Touch page 1 now; its stripe (phase 1) is visited next scan.
    rig.cg.touch(1, false, rig.zswap);
    kstaled.scan(rig.cg, 0);  // page 1 not visited; bit stays
    EXPECT_TRUE(rig.cg.page_test(1, kPageAccessed));
    ScanResult scan = kstaled.scan(rig.cg, 1);
    EXPECT_EQ(scan.accessed_pages, 1u);
    EXPECT_EQ(rig.cg.page_age(1), 0);
    EXPECT_FALSE(rig.cg.page_test(1, kPageAccessed));
}

TEST(KstaledStride, CpuScalesDownWithStride)
{
    Rig rig(1000);
    KstaledParams fine;
    KstaledParams coarse;
    coarse.scan_stride = 8;
    double fine_cycles = Kstaled(fine).scan(rig.cg, 0).cpu_cycles;
    double coarse_cycles = Kstaled(coarse).scan(rig.cg, 1).cpu_cycles;
    EXPECT_NEAR(coarse_cycles, fine_cycles / 8.0, fine_cycles * 0.01);
}

// --------------------------------------------------------------- zswap

TEST(ZswapTest, StoreAndLoadRoundTrip)
{
    Rig rig(10);
    EXPECT_TRUE(rig.zswap.store(rig.cg, 0));
    EXPECT_TRUE(rig.cg.page_test(0, kPageInZswap));
    EXPECT_EQ(rig.cg.resident_pages(), 9u);
    EXPECT_EQ(rig.cg.zswap_pages(), 1u);
    EXPECT_GT(rig.zswap.pool_bytes(), 0u);

    rig.zswap.load(rig.cg, 0);
    EXPECT_FALSE(rig.cg.page_test(0, kPageInZswap));
    EXPECT_EQ(rig.cg.resident_pages(), 10u);
    EXPECT_EQ(rig.cg.stats().zswap_promotions, 1u);
    EXPECT_GT(rig.cg.stats().decompress_cycles, 0.0);
    EXPECT_GT(rig.cg.stats().decompress_latency_us_sum, 0.0);
}

TEST(ZswapTest, TouchPromotesStoredPage)
{
    Rig rig(10);
    rig.zswap.store(rig.cg, 3);
    bool promoted = rig.cg.touch(3, false, rig.zswap);
    EXPECT_TRUE(promoted);
    EXPECT_FALSE(rig.cg.page_test(3, kPageInZswap));
    EXPECT_TRUE(rig.cg.page_test(3, kPageAccessed));
}

TEST(ZswapTest, IncompressiblePageRejectedAndMarked)
{
    Rig rig(10, incompressible_mix());
    EXPECT_FALSE(rig.zswap.store(rig.cg, 0));
    EXPECT_TRUE(rig.cg.page_test(0, kPageIncompressible));
    EXPECT_FALSE(rig.cg.page_test(0, kPageInZswap));
    EXPECT_EQ(rig.cg.resident_pages(), 10u);
    EXPECT_EQ(rig.cg.stats().zswap_rejects, 1u);
    // Cycles were burned on the failed attempt.
    EXPECT_GT(rig.cg.stats().compress_cycles, 0.0);
}

TEST(ZswapTest, DropDiscardsWithoutDecompression)
{
    Rig rig(10);
    rig.zswap.store(rig.cg, 1);
    double cycles_before = rig.cg.stats().decompress_cycles;
    rig.zswap.drop(rig.cg, 1);
    EXPECT_EQ(rig.cg.stats().decompress_cycles, cycles_before);
    EXPECT_EQ(rig.cg.stats().zswap_promotions, 0u);
    EXPECT_EQ(rig.cg.resident_pages(), 10u);
    EXPECT_EQ(rig.zswap.pool_bytes(), 0u);
}

TEST(ZswapTest, DropAllOnTeardown)
{
    Rig rig(20);
    for (PageId p = 0; p < 20; p += 2)
        rig.zswap.store(rig.cg, p);
    EXPECT_EQ(rig.cg.zswap_pages(), 10u);
    rig.zswap.drop_all(rig.cg);
    EXPECT_EQ(rig.cg.zswap_pages(), 0u);
    EXPECT_EQ(rig.zswap.stored_pages(), 0u);
}

TEST(ZswapTest, CompressedBytesTracked)
{
    Rig rig(10);
    rig.zswap.store(rig.cg, 0);
    std::uint64_t bytes = rig.cg.stats().compressed_bytes_stored;
    EXPECT_GT(bytes, 0u);
    EXPECT_LE(bytes, kMaxZswapPayload);
    rig.zswap.load(rig.cg, 0);
    EXPECT_EQ(rig.cg.stats().compressed_bytes_stored, 0u);
}

TEST(ZswapTest, RealCompressorEndToEnd)
{
    Rig rig(10, compressible_mix(), CompressionMode::kReal);
    EXPECT_TRUE(rig.zswap.store(rig.cg, 0));
    rig.zswap.load(rig.cg, 0);
    EXPECT_EQ(rig.cg.stats().zswap_promotions, 1u);
}

TEST(ZswapVerify, RoundTripVerifiedWithRealBackend)
{
    RealCompressor compressor;
    Zswap zswap(&compressor, 1, /*verify_roundtrip=*/true);
    Memcg cg(1, 50, 42, compressible_mix(), 0);
    for (PageId p = 0; p < 50; ++p)
        ASSERT_TRUE(zswap.store(cg, p));
    for (PageId p = 0; p < 50; ++p)
        zswap.load(cg, p);
    EXPECT_EQ(zswap.stats().verified_roundtrips, 50u);
}

TEST(ZswapVerify, VerifiesAcrossContentClasses)
{
    RealCompressor compressor;
    Zswap zswap(&compressor, 1, /*verify_roundtrip=*/true);
    // All compressible classes, incl. zero and text pages.
    Memcg cg(1, 300, 42, ContentMix(0.3, 0.3, 0.2, 0.2, 0.0), 0);
    for (PageId p = 0; p < 300; ++p)
        zswap.store(cg, p);
    for (PageId p = 0; p < 300; ++p) {
        if (cg.page_test(p, kPageInZswap))
            zswap.load(cg, p);
    }
    EXPECT_GT(zswap.stats().verified_roundtrips, 250u);
}

TEST(ZswapVerify, SurvivesWritesBetweenEpisodes)
{
    RealCompressor compressor;
    Zswap zswap(&compressor, 1, /*verify_roundtrip=*/true);
    Memcg cg(1, 10, 42, compressible_mix(), 0);
    zswap.store(cg, 0);
    cg.touch(0, /*is_write=*/true, zswap);  // promote + dirty
    // New contents; store and verify the fresh version round-trips.
    zswap.store(cg, 0);
    zswap.load(cg, 0);
    EXPECT_EQ(zswap.stats().verified_roundtrips, 2u);
}

TEST(ZswapVerify, ModeledBackendDisablesGracefully)
{
    set_log_quiet(true);
    ModeledCompressor compressor;
    Zswap zswap(&compressor, 1, /*verify_roundtrip=*/true);
    Memcg cg(1, 10, 42, compressible_mix(), 0);
    EXPECT_TRUE(zswap.store(cg, 0));
    zswap.load(cg, 0);  // must not crash
    EXPECT_EQ(zswap.stats().verified_roundtrips, 0u);
}

TEST(ZswapDeath, StoringZswapPageCaught)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Rig rig(10);
    rig.zswap.store(rig.cg, 0);
    EXPECT_DEATH(rig.zswap.store(rig.cg, 0), "assertion failed");
}

// ------------------------------------------------------------ kreclaimd

TEST(KreclaimdTest, DisabledWhenThresholdZero)
{
    Rig rig(10);
    rig.kstaled.scan(rig.cg);
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(0);
    ReclaimResult result = rig.kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    EXPECT_EQ(result.pages_stored, 0u);
}

TEST(KreclaimdTest, DisabledWhenZswapOff)
{
    Rig rig(10);
    rig.kstaled.scan(rig.cg);
    rig.cg.set_zswap_enabled(false);
    rig.cg.set_reclaim_threshold(1);
    ReclaimResult result = rig.kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    EXPECT_EQ(result.pages_stored, 0u);
}

TEST(KreclaimdTest, ReclaimsOnlyPagesPastThreshold)
{
    Rig rig(10);
    rig.kstaled.scan(rig.cg);  // all at age 1
    rig.cg.touch(0, false, rig.zswap);
    rig.kstaled.scan(rig.cg);  // page 0 at 0, others at 2
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(2);
    ReclaimResult result = rig.kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    EXPECT_EQ(result.pages_stored, 9u);
    EXPECT_FALSE(rig.cg.page_test(0, kPageInZswap));
}

TEST(KreclaimdTest, SkipsUnevictableAndIncompressible)
{
    Rig rig(10);
    rig.cg.set_unevictable(0, true);
    rig.cg.page_set(1, kPageIncompressible);
    rig.kstaled.scan(rig.cg);
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(1);
    ReclaimResult result = rig.kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    EXPECT_EQ(result.pages_stored, 8u);
    EXPECT_FALSE(rig.cg.page_test(0, kPageInZswap));
    EXPECT_FALSE(rig.cg.page_test(1, kPageInZswap));
}

TEST(KreclaimdTest, SkipsRecentlyAccessed)
{
    Rig rig(4);
    rig.kstaled.scan(rig.cg);
    rig.kstaled.scan(rig.cg);  // age 2
    // Touch page 0 after the scan: accessed bit set, stale age.
    rig.cg.touch(0, false, rig.zswap);
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(1);
    ReclaimResult result = rig.kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    EXPECT_EQ(result.pages_stored, 3u);
    EXPECT_FALSE(rig.cg.page_test(0, kPageInZswap));
}

TEST(KreclaimdTest, DirectReclaimTakesOldestFirst)
{
    Rig rig(10);
    rig.kstaled.scan(rig.cg);
    // Pages 0-4 touched -> young; 5-9 at age 2.
    for (PageId p = 0; p < 5; ++p)
        rig.cg.touch(p, false, rig.zswap);
    rig.kstaled.scan(rig.cg);
    ReclaimResult result =
        rig.kreclaimd.direct_reclaim(rig.cg, rig.zswap, 3);
    EXPECT_EQ(result.pages_stored, 3u);
    // The oldest (5-9) were taken, not the young ones.
    for (PageId p = 0; p < 5; ++p)
        EXPECT_FALSE(rig.cg.page_test(p, kPageInZswap));
}

TEST(KreclaimdTest, DirectReclaimRespectsSoftLimit)
{
    Rig rig(10);
    rig.kstaled.scan(rig.cg);
    rig.cg.set_soft_limit_pages(8);
    ReclaimResult result =
        rig.kreclaimd.direct_reclaim(rig.cg, rig.zswap, 10);
    // Only 2 pages may leave DRAM before hitting the soft limit.
    EXPECT_EQ(result.pages_stored, 2u);
    EXPECT_EQ(rig.cg.resident_pages(), 8u);
}

TEST(KreclaimdTest, DirectReclaimZeroTarget)
{
    Rig rig(10);
    ReclaimResult result =
        rig.kreclaimd.direct_reclaim(rig.cg, rig.zswap, 0);
    EXPECT_EQ(result.pages_stored, 0u);
    EXPECT_EQ(result.pages_walked, 0u);
}

TEST(KreclaimdTest, ZswapPagesAgeAndStayStored)
{
    Rig rig(4);
    rig.kstaled.scan(rig.cg);
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(1);
    rig.kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    EXPECT_EQ(rig.cg.zswap_pages(), 4u);
    // More scans: stored pages keep aging but stay stored, and the
    // cold histogram still counts them.
    rig.kstaled.scan(rig.cg);
    rig.kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    EXPECT_EQ(rig.cg.zswap_pages(), 4u);
    EXPECT_EQ(rig.cg.cold_pages_min_threshold(), 4u);
}

}  // namespace
}  // namespace sdfm
