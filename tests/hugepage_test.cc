/**
 * @file
 * Tests for transparent-huge-page handling: region-grain accessed
 * bits (one PTE for 512 pages), split-before-demote in kreclaimd,
 * and the coverage/recency resolution consequences.
 */

#include <gtest/gtest.h>

#include "compression/compressor.h"
#include "mem/kreclaimd.h"
#include "mem/kstaled.h"
#include "mem/memcg.h"
#include "mem/zswap.h"
#include "node/machine.h"
#include "workload/job.h"

namespace sdfm {
namespace {

ContentMix
compressible_mix()
{
    return ContentMix(0.0, 0.0, 1.0, 0.0, 0.0);
}

struct Rig
{
    explicit Rig(std::uint32_t pages)
        : compressor(make_compressor(CompressionMode::kModeled)),
          zswap(compressor.get(), 1),
          cg(1, pages, 42, compressible_mix(), 0)
    {
    }

    std::unique_ptr<Compressor> compressor;
    Zswap zswap;
    Memcg cg;
    Kstaled kstaled;
    Kreclaimd kreclaimd;
};

TEST(HugePages, MapAndSplitBookkeeping)
{
    Rig rig(2 * kHugeRegionPages);
    EXPECT_EQ(rig.cg.num_regions(), 2u);
    EXPECT_EQ(rig.cg.huge_regions(), 0u);
    rig.cg.map_huge_region(0);
    EXPECT_TRUE(rig.cg.region_is_huge(0));
    EXPECT_FALSE(rig.cg.region_is_huge(1));
    EXPECT_EQ(rig.cg.huge_regions(), 1u);
    rig.cg.split_huge_region(0);
    EXPECT_FALSE(rig.cg.region_is_huge(0));
    EXPECT_EQ(rig.cg.huge_regions(), 0u);
}

TEST(HugePages, OneAccessResetsWholeRegion)
{
    Rig rig(kHugeRegionPages);
    rig.cg.map_huge_region(0);
    rig.kstaled.scan(rig.cg);  // region ages to 1
    for (PageId p = 0; p < kHugeRegionPages; ++p)
        EXPECT_EQ(rig.cg.page_age(p), 1);
    // Touch ONE page: the shared accessed bit resets all 512.
    rig.cg.touch(7, false, rig.zswap);
    rig.kstaled.scan(rig.cg);
    for (PageId p = 0; p < kHugeRegionPages; ++p)
        EXPECT_EQ(rig.cg.page_age(p), 0) << p;
}

TEST(HugePages, RegionScanCostsOnePteVisit)
{
    Rig rig(2 * kHugeRegionPages);
    rig.cg.map_huge_region(0);
    ScanResult scan = rig.kstaled.scan(rig.cg);
    // One visit for the huge region + 512 for the 4 KiB pages.
    EXPECT_EQ(scan.pages_scanned, 1u + kHugeRegionPages);
}

TEST(HugePages, CoarseRecencyInflatesPromotionHistogram)
{
    Rig rig(kHugeRegionPages);
    rig.cg.map_huge_region(0);
    for (int i = 0; i < 5; ++i)
        rig.kstaled.scan(rig.cg);  // region at age 5
    rig.cg.touch(0, false, rig.zswap);
    rig.kstaled.scan(rig.cg);
    // All 512 pages count as would-be promotions at age 5 even
    // though only one was touched -- the huge-page resolution loss.
    EXPECT_EQ(rig.cg.promo_hist().at(5), kHugeRegionPages);
}

TEST(HugePages, ReclaimSplitsColdRegionThenCompresses)
{
    Rig rig(kHugeRegionPages);
    rig.cg.map_huge_region(0);
    for (int i = 0; i < 3; ++i)
        rig.kstaled.scan(rig.cg);
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(2);
    ReclaimResult first = rig.kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    // The split and the compression happen in one pass: the region is
    // split, then its (now 4 KiB) pages are stored.
    EXPECT_EQ(first.huge_splits, 1u);
    EXPECT_FALSE(rig.cg.region_is_huge(0));
    EXPECT_EQ(first.pages_stored, kHugeRegionPages);
    EXPECT_EQ(rig.cg.zswap_pages(), kHugeRegionPages);
}

TEST(HugePages, WarmRegionNotSplit)
{
    Rig rig(kHugeRegionPages);
    rig.cg.map_huge_region(0);
    rig.kstaled.scan(rig.cg);  // age 1
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(5);  // region is warmer than this
    ReclaimResult result = rig.kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    EXPECT_EQ(result.huge_splits, 0u);
    EXPECT_TRUE(rig.cg.region_is_huge(0));
    EXPECT_EQ(result.pages_stored, 0u);
}

TEST(HugePages, DirectReclaimSkipsHugeRegions)
{
    Rig rig(2 * kHugeRegionPages);
    rig.cg.map_huge_region(0);
    for (int i = 0; i < 3; ++i)
        rig.kstaled.scan(rig.cg);
    ReclaimResult result =
        rig.kreclaimd.direct_reclaim(rig.cg, rig.zswap, 100);
    EXPECT_EQ(result.pages_stored, 100u);
    // Everything stored came from the non-huge region.
    for (PageId p = 0; p < kHugeRegionPages; ++p)
        EXPECT_FALSE(rig.cg.page_test(p, kPageInZswap));
}

TEST(HugePages, SplitCycleCostCharged)
{
    KreclaimdParams params;
    params.split_cycles = 12345.0;
    params.cycles_per_page = 0.0;
    Kreclaimd kreclaimd(params);
    Rig rig(kHugeRegionPages);
    rig.cg.map_huge_region(0);
    for (int i = 0; i < 3; ++i)
        rig.kstaled.scan(rig.cg);
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(2);
    ReclaimResult result = kreclaimd.reclaim_cold(rig.cg, rig.zswap);
    EXPECT_DOUBLE_EQ(result.walk_cycles, 12345.0);
}

TEST(HugePages, JobProfileMapsRegions)
{
    JobProfile profile = profile_by_name("bigtable");
    profile.min_pages = 4 * kHugeRegionPages;
    profile.max_pages = 4 * kHugeRegionPages;
    profile.huge_page_frac = 1.0;
    Job job(1, profile, 3, 0);
    EXPECT_EQ(job.memcg().huge_regions(), 4u);
}

TEST(HugePages, EndToEndMachineWithHugePages)
{
    MachineConfig config;
    config.dram_pages = 128ull * kMiB / kPageSize;
    config.compression = CompressionMode::kModeled;
    // Fixed threshold: huge regions whose pages go idle for 8 minutes
    // get split deterministically within the test horizon.
    config.policy = FarMemoryPolicy::kStatic;
    config.static_threshold = 4;
    Machine machine(0, config, 3);
    JobProfile profile = profile_by_name("logs");
    profile.min_pages = 8 * kHugeRegionPages;
    profile.max_pages = 8 * kHugeRegionPages;
    profile.huge_page_frac = 0.5;
    machine.add_job(std::make_unique<Job>(1, profile, 7, 0));
    Job *job = machine.find_job(1);
    std::uint32_t huge_before = job->memcg().huge_regions();
    ASSERT_GT(huge_before, 0u);
    for (SimTime now = 0; now < 2 * kHour; now += kMinute)
        machine.step(now);
    // Cold huge regions get split over time and their pages reach
    // far memory.
    EXPECT_LT(job->memcg().huge_regions(), huge_before);
    EXPECT_GT(machine.zswap_stored_pages(), 0u);
}

}  // namespace
}  // namespace sdfm
