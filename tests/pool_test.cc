/**
 * @file
 * Tests for lease-based cluster memory pooling: the lease lifecycle
 * state machine, the MemoryBroker's grant/revoke/drain control plane
 * under message loss and stalls, the per-machine control-plane
 * breaker (and its fallback routing to shallower tiers), and the
 * lease table's checkpoint section -- round trips that continue the
 * digest trajectory mid-revocation, and corrupt-table rejection that
 * leaves the live fleet untouched.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "cluster/cluster.h"
#include "cluster/lease.h"
#include "cluster/mem_pool.h"
#include "core/far_memory_system.h"
#include "fault/circuit_breaker.h"
#include "node/machine.h"
#include "util/invariant.h"
#include "workload/job.h"
#include "workload/job_profile.h"

namespace sdfm {
namespace {

// ---------------------------------------------------------------------
// Lease lifecycle state machine
// ---------------------------------------------------------------------

TEST(LeaseTest, TransitionMatrixMatchesLifecycle)
{
    using S = LeaseState;
    const S all[] = {S::kGranted, S::kActive, S::kRevoking, S::kRevoked,
                     S::kExpired};
    auto legal = [](S from, S to) {
        return lease_transition_legal(from, to);
    };
    // The only legal hops: grant delivery, grant abort, revocation
    // (or natural expiry) entering the grace window, and the grace
    // window resolving to either terminal.
    EXPECT_TRUE(legal(S::kGranted, S::kActive));
    EXPECT_TRUE(legal(S::kGranted, S::kRevoked));
    EXPECT_TRUE(legal(S::kActive, S::kRevoking));
    EXPECT_TRUE(legal(S::kActive, S::kRevoked));
    EXPECT_TRUE(legal(S::kRevoking, S::kRevoked));
    EXPECT_TRUE(legal(S::kRevoking, S::kExpired));
    int legal_count = 0;
    for (S from : all) {
        for (S to : all) {
            if (legal(from, to))
                ++legal_count;
            // Terminal states never leave; nothing re-enters kGranted.
            if (from == S::kRevoked || from == S::kExpired) {
                EXPECT_FALSE(legal(from, to));
            }
            EXPECT_FALSE(legal(from, S::kGranted));
        }
    }
    EXPECT_EQ(legal_count, 6);
}

TEST(LeaseTest, CkptRoundTripPreservesEveryField)
{
    Lease lease;
    lease.id = 42;
    lease.donor = 3;
    lease.borrower = 1;
    lease.pages = 4096;
    lease.state = LeaseState::kRevoking;
    lease.deadline = 90 * kMinute;
    lease.grace_remaining = 2;
    lease.expiry = true;
    lease.revoke_pending = false;
    lease.grant_retries = 1;
    lease.grant_backoff_remaining = 0;

    Serializer s;
    lease.ckpt_save(s);
    Lease restored;
    Deserializer d(s.bytes());
    ASSERT_TRUE(restored.ckpt_load(d));
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d.at_end());
    EXPECT_EQ(restored.state_digest(), lease.state_digest());
    EXPECT_EQ(restored.id, lease.id);
    EXPECT_EQ(restored.state, lease.state);
    EXPECT_EQ(restored.deadline, lease.deadline);
}

TEST(LeaseTest, CorruptStateByteIsRejected)
{
    Lease lease;
    lease.id = 7;
    lease.donor = 0;
    lease.borrower = 1;
    lease.pages = 1024;
    Serializer s;
    lease.ckpt_save(s);
    std::vector<std::uint8_t> bytes = s.take();
    // The state byte rides right after id/donor/borrower/pages
    // (4 + 4 + 4 + 8 bytes in).
    bytes[20] = 0x7F;
    Lease restored;
    Deserializer d(bytes.data(), bytes.size());
    EXPECT_FALSE(restored.ckpt_load(d));
}

#ifdef SDFM_CHECK_INVARIANTS

TEST(LeaseDeathTest, IllegalTransitionDies)
{
    Lease lease;
    lease.state = LeaseState::kExpired;
    // Terminal states are final; reviving one must trip the check.
    EXPECT_DEATH(lease.transition(LeaseState::kActive),
                 "invariant violated");
}

#endif  // SDFM_CHECK_INVARIANTS

// ---------------------------------------------------------------------
// Broker control plane (direct unit tests, no cluster)
// ---------------------------------------------------------------------

MachineConfig
pooled_machine()
{
    MachineConfig config;
    config.dram_pages = 16 * 1024;
    config.compression = CompressionMode::kModeled;
    config.remote.pooled = true;
    return config;
}

MachineConfig
donor_machine()
{
    // No remote tier at all: this machine can lend DRAM but never
    // borrows (pooled_remote() is null, so matching skips it).
    MachineConfig config;
    config.dram_pages = 16 * 1024;
    config.compression = CompressionMode::kModeled;
    return config;
}

MemPoolParams
small_pool()
{
    MemPoolParams params;
    params.enabled = true;
    params.lease_pages = 1024;
    params.max_leases_per_borrower = 1;
    params.lease_term_periods = 60;
    params.grace_periods = 2;
    params.drain_pages_per_period = 512;
    params.donor_reserve_frac = 0.10;
    return params;
}

std::vector<std::unique_ptr<Machine>>
two_machines()
{
    std::vector<std::unique_ptr<Machine>> machines;
    machines.push_back(std::make_unique<Machine>(0, pooled_machine(), 11));
    machines.push_back(std::make_unique<Machine>(1, donor_machine(), 22));
    return machines;
}

/** Load @p machine with fresh jobs until its free DRAM drops under
 *  @p target_free pages (the donor-pressure trigger in these tests). */
void
pressurize(Machine &machine, std::uint64_t target_free)
{
    const FleetMix mix = typical_fleet_mix();
    const JobProfile &profile = mix.profiles[0];
    JobId id = 1ull << 32;
    // Overshooting DRAM is fine: nothing steps the machine here, so
    // no OOM eviction runs -- free_pages() just clamps at zero and
    // the donor-pressure condition holds.
    while (machine.free_pages() >= target_free) {
        ++id;
        machine.add_job(
            std::make_unique<Job>(id, profile, id * 7919, 0));
    }
}

TEST(BrokerTest, GrantDeliversOneRoundTripLater)
{
    auto machines = two_machines();
    MemoryBroker broker(small_pool(), 99, 2);

    // Step 1: the borrower (empty lease slots) is matched to the
    // donor; the lease is issued but not yet delivered, and the
    // donor's pages are already committed.
    broker.step(0, kMinute, machines);
    ASSERT_EQ(broker.leases().size(), 1u);
    const Lease &lease = broker.leases().begin()->second;
    EXPECT_EQ(lease.state, LeaseState::kGranted);
    EXPECT_EQ(lease.donor, 1u);
    EXPECT_EQ(lease.borrower, 0u);
    EXPECT_EQ(lease.pages, 1024u);
    EXPECT_EQ(machines[1]->donated_pages(), 1024u);
    EXPECT_EQ(broker.stats().leases_issued, 1u);
    EXPECT_EQ(broker.stats().leases_granted, 0u);
    broker.check_invariants(machines);

    // Step 2: delivery lands; the borrower's remote tier now has a
    // slot and the lease got its natural-term deadline.
    broker.step(kMinute, kMinute, machines);
    EXPECT_EQ(lease.state, LeaseState::kActive);
    EXPECT_EQ(lease.deadline,
              kMinute + 60 * kMinute);
    EXPECT_EQ(broker.stats().leases_granted, 1u);
    ASSERT_NE(machines[0]->pooled_remote(), nullptr);
    EXPECT_EQ(machines[0]->pooled_remote()->capacity_pages(), 1024u);
    broker.check_invariants(machines);
}

TEST(BrokerTest, DonorPressureRevokesAndEmptyLeaseDrainsClean)
{
    auto machines = two_machines();
    MemoryBroker broker(small_pool(), 99, 2);
    broker.step(0, kMinute, machines);
    broker.step(kMinute, kMinute, machines);
    ASSERT_EQ(broker.leases().begin()->second.state,
              LeaseState::kActive);

    // Heat the donor past its reserve (10% of 16384 = 1638 pages).
    pressurize(*machines[1], 1638);

    // The broker revokes the donor's newest lease; the borrower's
    // slot is empty, so the drain completes inside the same step and
    // the donor gets its pages back without any job dying.
    broker.step(2 * kMinute, kMinute, machines);
    EXPECT_EQ(broker.leases().begin()->second.state,
              LeaseState::kRevoked);
    EXPECT_EQ(broker.stats().revocations, 1u);
    EXPECT_EQ(broker.stats().clean_drains, 1u);
    EXPECT_EQ(broker.stats().forced_kills, 0u);
    EXPECT_EQ(broker.stats().expiries, 0u);
    EXPECT_EQ(machines[1]->donated_pages(), 0u);
    broker.check_invariants(machines);

    // Terminal leases are pruned at the start of the next step.
    broker.step(3 * kMinute, kMinute, machines);
    for (const auto &[id, lease] : broker.leases())
        EXPECT_FALSE(lease.terminal());
}

TEST(BrokerTest, NaturalExpiryTerminatesAsExpired)
{
    MemPoolParams params = small_pool();
    params.lease_term_periods = 3;
    auto machines = two_machines();
    MemoryBroker broker(params, 99, 2);
    broker.step(0, kMinute, machines);
    broker.step(kMinute, kMinute, machines);  // active, deadline t+3
    SimTime now = 2 * kMinute;
    // Run past the deadline: the lease drains out through the same
    // revocation path but terminates as a natural expiry.
    for (; now <= 6 * kMinute; now += kMinute) {
        broker.step(now, kMinute, machines);
        if (broker.stats().expiries > 0)
            break;
    }
    EXPECT_EQ(broker.stats().expiries, 1u);
    EXPECT_EQ(broker.stats().forced_kills, 0u);
    bool saw_expired = false;
    for (const auto &[id, lease] : broker.leases())
        saw_expired |= lease.state == LeaseState::kExpired;
    EXPECT_TRUE(saw_expired);
}

TEST(BrokerTest, LostGrantsRetryWithBackoffThenAbort)
{
    MemPoolParams params = small_pool();
    params.max_grant_retries = 2;
    params.grant_backoff_base = 1;
    params.fault.enabled = true;
    params.fault.lease_grant_loss_prob = 1.0;  // every delivery lost
    auto machines = two_machines();
    MemoryBroker broker(params, 99, 2);

    SimTime now = 0;
    for (int i = 0; i < 12; ++i, now += kMinute)
        broker.step(now, kMinute, machines);

    // Every delivery attempt was lost: grants abort after bounded
    // retries, nothing ever activates, and each abort returns the
    // donor's committed pages before the next match re-issues.
    EXPECT_GE(broker.stats().grants_aborted, 1u);
    EXPECT_EQ(broker.stats().leases_granted, 0u);
    for (const auto &[id, lease] : broker.leases())
        EXPECT_NE(lease.state, LeaseState::kActive);
    broker.check_invariants(machines);
}

TEST(BrokerTest, LostRevocationsRedeliverAndOpenTheBreaker)
{
    MemPoolParams params = small_pool();
    params.fault.enabled = true;
    params.fault.revocation_loss_prob = 1.0;  // every revocation lost
    auto machines = two_machines();
    MemoryBroker broker(params, 99, 2);
    broker.step(0, kMinute, machines);
    broker.step(kMinute, kMinute, machines);
    ASSERT_EQ(broker.leases().begin()->second.state,
              LeaseState::kActive);
    pressurize(*machines[1], 1638);

    SimTime now = 2 * kMinute;
    for (int i = 0; i < 6; ++i, now += kMinute)
        broker.step(now, kMinute, machines);

    // The revocation decision stands but its message never arrives:
    // the lease stays active with redelivery pending, and the
    // borrower's repeated control-plane failures open its breaker.
    const Lease &lease = broker.leases().begin()->second;
    EXPECT_EQ(lease.state, LeaseState::kActive);
    EXPECT_TRUE(lease.revoke_pending);
    EXPECT_EQ(broker.stats().revocations, 0u);
    EXPECT_GE(broker.stats().breaker_opens, 1u);
    EXPECT_EQ(broker.breaker(0).state(), BreakerState::kOpen);
    broker.check_invariants(machines);
}

TEST(BrokerTest, StalledBrokerMakesNoProgressAndTripsBreakers)
{
    MemPoolParams params = small_pool();
    params.fault.enabled = true;
    params.fault.broker_stall_prob = 1.0;
    params.fault.broker_stall_duration = 60 * kMinute;
    auto machines = two_machines();
    MemoryBroker broker(params, 99, 2);

    SimTime now = 0;
    for (int i = 0; i < 6; ++i, now += kMinute) {
        BrokerStepResult result = broker.step(now, kMinute, machines);
        EXPECT_TRUE(result.stalled);
        EXPECT_TRUE(result.killed.empty());
    }
    // No matches, no grants -- and every machine observed the outage.
    EXPECT_TRUE(broker.leases().empty());
    EXPECT_EQ(broker.stats().leases_issued, 0u);
    EXPECT_GE(broker.stats().breaker_opens, 2u);
    EXPECT_EQ(broker.breaker(0).state(), BreakerState::kOpen);
    EXPECT_EQ(broker.breaker(1).state(), BreakerState::kOpen);
}

// ---------------------------------------------------------------------
// Fleet-level pooling (grace drains, breaker fallback, determinism)
// ---------------------------------------------------------------------

FleetConfig
pooled_fleet(std::uint64_t seed)
{
    FleetConfig config;
    config.seed = seed;
    config.num_clusters = 1;
    config.cluster.mix = typical_fleet_mix();
    config.cluster.num_machines = 4;
    config.cluster.machine.dram_pages = 16 * 1024;
    MemPoolParams &pool = config.cluster.pool;
    pool.enabled = true;
    pool.lease_pages = 1024;
    pool.max_leases_per_borrower = 2;
    pool.lease_term_periods = 8;
    pool.grace_periods = 2;
    pool.drain_pages_per_period = 512;
    pool.donor_reserve_frac = 0.08;
    return config;
}

TEST(PoolFleetTest, LeasesCirculateAndDrainWithoutKills)
{
    // Short terms force the full lifecycle -- grant, activate, expire,
    // grace-drain -- several times over; with a working drain rate no
    // lease should ever reach the forced-kill path.
    FleetConfig config = pooled_fleet(5);
    FarMemorySystem fleet(config);
    fleet.populate();
    for (int i = 0; i < 45; ++i) {
        fleet.step();
        fleet.check_invariants();
    }
    FleetFaultReport report = fleet.fault_report();
    EXPECT_GT(report.pool_leases_granted, 0u);
    EXPECT_GT(report.pool_revocations, 0u);
    EXPECT_EQ(report.pool_forced_kills, 0u);
}

TEST(PoolFleetTest, ZeroDrainRateForcesKillsAtGraceEnd)
{
    // A borrower that cannot drain at all forfeits the lease when the
    // grace window closes: the owning jobs die -- the one pooling
    // path that still kills jobs without a donor crash.
    FleetConfig config = pooled_fleet(5);
    config.cluster.pool.drain_pages_per_period = 0;
    config.cluster.pool.grace_periods = 1;
    FarMemorySystem fleet(config);
    fleet.populate();
    std::uint64_t stored_seen = 0;
    for (int i = 0; i < 45; ++i) {
        fleet.step();
        for (const auto &machine :
             fleet.clusters()[0]->machines()) {
            stored_seen =
                std::max(stored_seen, machine->tier_stored_pages());
        }
    }
    FleetFaultReport report = fleet.fault_report();
    ASSERT_GT(stored_seen, 0u)
        << "no lease slot ever carried pages; the kill path was "
           "never reachable";
    EXPECT_GT(report.pool_forced_kills, 0u);
}

TEST(PoolFleetTest, BrokerOutageOpensBreakersAndReroutesDemotions)
{
    // Ten clean minutes of pooling, then the broker stalls for the
    // rest of the run: every machine's control-plane breaker opens,
    // the lease-backed tier is gated to zero budget, and demotions
    // fall through the route table to zswap -- no job is killed.
    FleetConfig config = pooled_fleet(5);
    ScheduledFault stall;
    stall.at = config.start_time + 10 * kMinute;
    stall.event.kind = FaultKind::kBrokerStall;
    stall.event.duration = 120 * kMinute;
    config.cluster.pool.fault.enabled = true;
    config.cluster.pool.fault.schedule = {stall};
    FarMemorySystem fleet(config);
    fleet.populate();
    for (int i = 0; i < 40; ++i)
        fleet.step();

    FleetFaultReport report = fleet.fault_report();
    EXPECT_GT(report.pool_leases_granted, 0u);
    EXPECT_GT(report.pool_broker_stalls, 0u);
    EXPECT_GE(report.pool_breaker_opens,
              config.cluster.num_machines);
    EXPECT_EQ(report.pool_forced_kills, 0u);
    EXPECT_EQ(report.jobs_killed, 0u);
    const MemoryBroker *broker = fleet.clusters()[0]->broker();
    ASSERT_NE(broker, nullptr);
    for (std::uint32_t m = 0; m < config.cluster.num_machines; ++m)
        EXPECT_EQ(broker->breaker(m).state(), BreakerState::kOpen);
    std::uint64_t zswap_stored = 0;
    for (const auto &machine : fleet.clusters()[0]->machines())
        zswap_stored += machine->zswap_stored_pages();
    EXPECT_GT(zswap_stored, 0u)
        << "gated demotions should fall through to zswap";
}

TEST(PoolFleetTest, SerialAndParallelSteppingAgreeWithPooling)
{
    FleetConfig serial_config = pooled_fleet(9);
    serial_config.num_clusters = 2;
    serial_config.serial_step = true;
    FleetConfig parallel_config = pooled_fleet(9);
    parallel_config.num_clusters = 2;
    parallel_config.serial_step = false;

    FarMemorySystem serial(serial_config);
    FarMemorySystem parallel(parallel_config);
    serial.populate();
    parallel.populate();
    ASSERT_EQ(serial.state_digest(), parallel.state_digest());
    for (int i = 0; i < 15; ++i) {
        serial.step();
        parallel.step();
        ASSERT_EQ(serial.state_digest(), parallel.state_digest())
            << "diverged at step " << i;
    }
}

// ---------------------------------------------------------------------
// Checkpoint: the lease table section
// ---------------------------------------------------------------------

struct TempCkpt
{
    explicit TempCkpt(const char *name) : path(name) {}
    ~TempCkpt() { std::remove(path.c_str()); }
    std::string path;
};

bool
any_lease_revoking(const FarMemorySystem &fleet)
{
    for (const auto &cluster : fleet.clusters()) {
        const MemoryBroker *broker = cluster->broker();
        if (broker == nullptr)
            continue;
        for (const auto &[id, lease] : broker->leases()) {
            if (lease.state == LeaseState::kRevoking)
                return true;
        }
    }
    return false;
}

TEST(PoolCkpt, RoundTripMidRevocationContinuesDigestTrajectory)
{
    TempCkpt ckpt("pool_ckpt_traj.ckpt");
    FleetConfig config = pooled_fleet(5);

    // Step the reference fleet until a lease is mid-revocation (in
    // its grace window), so the checkpoint captures the hardest
    // slice of lease state: partial drains, grace countdowns, and a
    // borrower slot marked draining.
    FarMemorySystem reference(config);
    reference.populate();
    bool found = false;
    for (int i = 0; i < 60 && !found; ++i) {
        reference.step();
        found = any_lease_revoking(reference);
    }
    ASSERT_TRUE(found) << "no lease entered its grace window; the "
                          "checkpoint would not cover mid-revocation";
    ASSERT_EQ(reference.checkpoint(ckpt.path), CkptStatus::kOk);

    FarMemorySystem resumed(config);
    ASSERT_EQ(resumed.restore(ckpt.path), CkptStatus::kOk);
    EXPECT_EQ(resumed.state_digest(), reference.state_digest());
    for (int i = 0; i < 12; ++i) {
        reference.step();
        resumed.step();
        ASSERT_EQ(resumed.state_digest(), reference.state_digest())
            << "diverged " << i << " steps after restore";
    }
}

TEST(PoolCkpt, CorruptLeaseTableRejectsRestoreAndSparesLiveFleet)
{
    TempCkpt good("pool_ckpt_good.ckpt");
    TempCkpt bad("pool_ckpt_bad.ckpt");
    FleetConfig config = pooled_fleet(5);
    FarMemorySystem fleet(config);
    fleet.populate();
    for (int i = 0; i < 12; ++i)
        fleet.step();
    ASSERT_EQ(fleet.checkpoint(good.path), CkptStatus::kOk);
    for (int i = 0; i < 3; ++i)
        fleet.step();
    const std::uint64_t live_digest = fleet.state_digest();

    auto rewrite_pool_section =
        [&](const std::vector<std::uint8_t> &payload) {
            CkptReader reader;
            ASSERT_EQ(reader.read_file(good.path), CkptStatus::kOk);
            CkptWriter writer;
            bool found = false;
            for (const CkptSection &section : reader.sections()) {
                if (section.name == "pool.0000") {
                    writer.add_section(section.name, payload);
                    found = true;
                } else {
                    writer.add_section(section.name, section.payload);
                }
            }
            ASSERT_TRUE(found) << "pooled checkpoint lacks its pool "
                                  "section";
            ASSERT_EQ(writer.write_file(bad.path), CkptStatus::kOk);
        };

    auto expect_rejected = [&](CkptStatus want) {
        EXPECT_EQ(fleet.restore(bad.path), want);
        EXPECT_EQ(fleet.state_digest(), live_digest)
            << "a rejected restore mutated the live fleet";
    };

    {  // CRC-valid garbage where the lease table should be
        rewrite_pool_section({0xDE, 0xAD, 0xBE});
        expect_rejected(CkptStatus::kCorruptPayload);
    }
    {  // pool section from a different wire lineage
        CkptReader reader;
        ASSERT_EQ(reader.read_file(good.path), CkptStatus::kOk);
        const std::vector<std::uint8_t> *payload =
            reader.section("pool.0000");
        ASSERT_NE(payload, nullptr);
        std::vector<std::uint8_t> versioned = *payload;
        versioned[0] ^= 0x08;  // the section's own version u32
        rewrite_pool_section(versioned);
        expect_rejected(CkptStatus::kBadVersion);
    }
    {  // a parseable table that disagrees with the machines: flip a
       // lease state deep in the payload and recompute nothing --
       // ckpt_load or ckpt_resolve must catch the inconsistency
        CkptReader reader;
        ASSERT_EQ(reader.read_file(good.path), CkptStatus::kOk);
        const std::vector<std::uint8_t> *payload =
            reader.section("pool.0000");
        ASSERT_NE(payload, nullptr);
        std::vector<std::uint8_t> truncated(
            payload->begin(), payload->end() - 8);
        rewrite_pool_section(truncated);
        expect_rejected(CkptStatus::kCorruptPayload);
    }
    {  // dropping the pool section entirely is also a corrupt file
        CkptReader reader;
        ASSERT_EQ(reader.read_file(good.path), CkptStatus::kOk);
        CkptWriter writer;
        for (const CkptSection &section : reader.sections()) {
            if (section.name != "pool.0000")
                writer.add_section(section.name, section.payload);
        }
        ASSERT_EQ(writer.write_file(bad.path), CkptStatus::kOk);
        expect_rejected(CkptStatus::kCorruptPayload);
    }
}

}  // namespace
}  // namespace sdfm
