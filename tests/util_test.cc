/**
 * @file
 * Unit tests for the util substrate: RNG and distributions, sample
 * statistics, age histograms, linear algebra, table formatting, and
 * the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "util/age_histogram.h"
#include "util/linalg.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace sdfm {
namespace {

class QuietLogs : public ::testing::Environment
{
  public:
    void SetUp() override { set_log_quiet(true); }
};

const ::testing::Environment *const kQuiet =
    ::testing::AddGlobalTestEnvironment(new QuietLogs);

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.next_double();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, NextBelowBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.next_below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::int64_t v = rng.next_range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0, sum2 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double g = rng.next_gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.next_exponential(0.5);
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ParetoSupportAndTail)
{
    Rng rng(23);
    const int n = 50000;
    int above_10x = 0;
    for (int i = 0; i < n; ++i) {
        double v = rng.next_pareto(60.0, 1.0);
        EXPECT_GE(v, 60.0);
        above_10x += v > 600.0;
    }
    // P(X > 10 * scale) = 0.1 for alpha = 1.
    EXPECT_NEAR(static_cast<double>(above_10x) / n, 0.1, 0.01);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(29);
    const int n = 50001;
    std::vector<double> vals;
    for (int i = 0; i < n; ++i)
        vals.push_back(rng.next_lognormal(std::log(60.0), 1.0));
    std::sort(vals.begin(), vals.end());
    EXPECT_NEAR(vals[n / 2], 60.0, 2.5);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next_u64() == child.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Zipf, Rank0MostPopular)
{
    Rng rng(37);
    ZipfDistribution zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
}

TEST(Zipf, ZeroSkewIsUniformish)
{
    Rng rng(41);
    ZipfDistribution zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 100);
}

// -------------------------------------------------------------- stats

TEST(SampleSet, PercentileInterpolates)
{
    SampleSet s;
    for (double v : {10.0, 20.0, 30.0, 40.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 25.0);
}

TEST(SampleSet, MeanMinMax)
{
    SampleSet s;
    s.add_all({3.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSet, CdfAt)
{
    SampleSet s;
    s.add_all({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSet, AddInvalidatesSortCache)
{
    SampleSet s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(BoxSummaryTest, QuartilesAndWhiskers)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    BoxSummary box = box_summary(s);
    EXPECT_EQ(box.count, 100u);
    EXPECT_NEAR(box.median, 50.5, 0.01);
    EXPECT_NEAR(box.q1, 25.75, 0.01);
    EXPECT_NEAR(box.q3, 75.25, 0.01);
    EXPECT_DOUBLE_EQ(box.min, 1.0);
    EXPECT_DOUBLE_EQ(box.max, 100.0);
    // whiskers clamp to data range here (no outliers).
    EXPECT_DOUBLE_EQ(box.whisker_lo, 1.0);
    EXPECT_DOUBLE_EQ(box.whisker_hi, 100.0);
}

TEST(BoxSummaryTest, WhiskerClampsOutliers)
{
    SampleSet s;
    for (int i = 0; i < 20; ++i)
        s.add(10.0);
    s.add(1000.0);  // outlier
    BoxSummary box = box_summary(s);
    EXPECT_LT(box.whisker_hi, 1000.0);
}

TEST(RunningMeanTest, WeightedMean)
{
    RunningMean m;
    m.add(1.0, 1.0);
    m.add(3.0, 3.0);
    EXPECT_DOUBLE_EQ(m.mean(), 2.5);
    EXPECT_DOUBLE_EQ(m.total_weight(), 4.0);
}

TEST(CdfPoints, MatchesPercentiles)
{
    SampleSet s;
    for (int i = 0; i <= 100; ++i)
        s.add(i);
    auto points = cdf_points(s, {50.0, 98.0});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].second, 50.0);
    EXPECT_DOUBLE_EQ(points[1].second, 98.0);
}

// ------------------------------------------------------ age histogram

TEST(AgeHistogramTest, BucketConversion)
{
    EXPECT_EQ(age_to_bucket(0), 0);
    EXPECT_EQ(age_to_bucket(119), 0);
    EXPECT_EQ(age_to_bucket(120), 1);
    EXPECT_EQ(age_to_bucket(240), 2);
    EXPECT_EQ(age_to_bucket(255 * 120), 255);
    EXPECT_EQ(age_to_bucket(1000000), 255);  // saturates
    EXPECT_EQ(bucket_to_age(2), 240);
}

TEST(AgeHistogramTest, CumulativeQueries)
{
    AgeHistogram h;
    h.add(0, 10);
    h.add(1, 5);
    h.add(200, 3);
    EXPECT_EQ(h.total(), 18u);
    EXPECT_EQ(h.count_at_least(1), 8u);
    EXPECT_EQ(h.count_at_least(201), 0u);
    EXPECT_EQ(h.count_below(1), 10u);
    EXPECT_EQ(h.count_below(200), 15u);
    EXPECT_EQ(h.count_below(255), 18u);
}

TEST(AgeHistogramTest, DeltaOfSnapshots)
{
    AgeHistogram prev, cur;
    prev.add(3, 2);
    cur.add(3, 5);
    cur.add(7, 1);
    AgeHistogram d = AgeHistogram::delta(cur, prev);
    EXPECT_EQ(d.at(3), 3u);
    EXPECT_EQ(d.at(7), 1u);
    EXPECT_EQ(d.total(), 4u);
}

TEST(AgeHistogramTest, Accumulate)
{
    AgeHistogram a, b;
    a.add(1, 1);
    b.add(1, 2);
    b.add(2, 3);
    a += b;
    EXPECT_EQ(a.at(1), 3u);
    EXPECT_EQ(a.at(2), 3u);
}

// -------------------------------------------------------------- linalg

TEST(MatrixTest, MulVector)
{
    Matrix m(2, 3);
    m(0, 0) = 1;
    m(0, 1) = 2;
    m(0, 2) = 3;
    m(1, 0) = 4;
    m(1, 1) = 5;
    m(1, 2) = 6;
    Vector v = {1.0, 1.0, 1.0};
    Vector out = m.mul(v);
    EXPECT_DOUBLE_EQ(out[0], 6.0);
    EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(MatrixTest, Transpose)
{
    Matrix m(2, 3);
    m(0, 2) = 7.0;
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(CholeskyTest, SolvesKnownSystem)
{
    // A = [[4,2],[2,3]], SPD. b = [2,1] -> x = [0.5, 0].
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    Cholesky chol(a);
    ASSERT_TRUE(chol.ok());
    Vector x = chol.solve({2.0, 1.0});
    EXPECT_NEAR(x[0], 0.5, 1e-12);
    EXPECT_NEAR(x[1], 0.0, 1e-12);
}

TEST(CholeskyTest, LogDet)
{
    Matrix a(2, 2);
    a(0, 0) = 2;
    a(1, 1) = 8;
    Cholesky chol(a);
    ASSERT_TRUE(chol.ok());
    EXPECT_NEAR(chol.log_det(), std::log(16.0), 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite)
{
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 1;  // eigenvalues 3, -1
    Cholesky chol(a);
    EXPECT_FALSE(chol.ok());
}

TEST(CholeskyTest, RandomSpdRoundTrip)
{
    Rng rng(43);
    for (int trial = 0; trial < 20; ++trial) {
        std::size_t n = 1 + rng.next_below(8);
        // A = B B^T + I is SPD.
        Matrix b(n, n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                b(i, j) = rng.next_gaussian();
        Matrix a = b.mul(b.transposed());
        for (std::size_t i = 0; i < n; ++i)
            a(i, i) += 1.0;
        Vector x_true(n);
        for (auto &v : x_true)
            v = rng.next_gaussian();
        Vector rhs = a.mul(x_true);
        Cholesky chol(a);
        ASSERT_TRUE(chol.ok());
        Vector x = chol.solve(rhs);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
}

TEST(DotTest, Basic)
{
    EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
}

// -------------------------------------------------------------- table

TEST(TableTest, AlignsColumns)
{
    TablePrinter t({"a", "long_header"});
    t.add_row({"xxxxx", "1"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| a     |"), std::string::npos);
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, Formatters)
{
    EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
    EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
    EXPECT_EQ(fmt_bytes(2048.0), "2.0 KiB");
    EXPECT_EQ(fmt_bytes(3.0 * 1024 * 1024), "3.0 MiB");
    EXPECT_EQ(fmt_int(-7), "-7");
}

TEST(CsvTest, QuotesSpecials)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.write_row({"plain", "with,comma", "with\"quote"});
    EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

// --------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndexSpace)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(pool, hits.size(),
                 [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty)
{
    ThreadPool pool(2);
    parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool)
{
    ThreadPool pool(2);
    pool.wait_idle();  // must not hang
    SUCCEED();
}

}  // namespace
}  // namespace sdfm
