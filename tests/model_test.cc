/**
 * @file
 * Tests for the fast far-memory model: controller-equivalence on
 * synthetic traces, parameter monotonicity, parallel-serial
 * agreement, and consistency with an online machine run.
 */

#include <gtest/gtest.h>

#include "model/far_memory_model.h"
#include "node/machine.h"
#include "node/threshold_controller.h"
#include "util/thread_pool.h"
#include "workload/job.h"

namespace sdfm {
namespace {

/** Build a synthetic steady trace: a stable cold pool plus a steady
 *  re-access stream at a given age. */
JobTrace
steady_trace(JobId job, std::size_t windows, std::uint64_t wss,
             std::uint64_t cold_pages, AgeBucket reaccess_age,
             std::uint64_t reaccesses_per_window)
{
    JobTrace trace;
    trace.job = job;
    for (std::size_t w = 0; w < windows; ++w) {
        TraceEntry entry;
        entry.job = job;
        entry.timestamp = static_cast<SimTime>((w + 1)) * kTraceWindow;
        entry.wss_pages = wss;
        entry.cold_hist.add(0, wss);
        entry.cold_hist.add(200, cold_pages);   // deep-cold pool
        entry.promo_delta.add(reaccess_age, reaccesses_per_window);
        trace.entries.push_back(entry);
    }
    return trace;
}

TEST(FarMemoryModel, EmptyTraces)
{
    FarMemoryModel model;
    ModelResult result = model.evaluate({}, SloConfig{});
    EXPECT_EQ(result.total_windows, 0u);
    EXPECT_DOUBLE_EQ(result.mean_captured_pages, 0.0);
}

TEST(FarMemoryModel, CapturesDeepColdPool)
{
    // Re-accesses at age 3; budget 0.2% of 10000 = 20/min = 100 per
    // window > 50 re-accesses: even threshold 1 is fine, so nearly
    // all cold memory is captured.
    FarMemoryModel model;
    std::vector<JobTrace> traces = {
        steady_trace(1, 24, 10000, 5000, 3, 50)};
    SloConfig slo;
    slo.enable_delay = 0;
    ModelResult result = model.evaluate(traces, slo);
    EXPECT_GT(result.mean_captured_pages, 4000.0);
    EXPECT_LE(result.p98_promotion_rate, slo.target_promotion_rate);
}

TEST(FarMemoryModel, RespectsSloWithHotReaccess)
{
    // Heavy re-access at age 3 forces the threshold above 3; the
    // deep-cold pool at age 200 is still capturable.
    FarMemoryModel model;
    std::vector<JobTrace> traces = {
        steady_trace(1, 24, 10000, 5000, 3, 5000)};
    SloConfig slo;
    slo.enable_delay = 0;
    ModelResult result = model.evaluate(traces, slo);
    EXPECT_LE(result.p98_promotion_rate, slo.target_promotion_rate);
    EXPECT_GT(result.mean_captured_pages, 4000.0);
}

TEST(FarMemoryModel, EnableDelaySuppressesEarlyWindows)
{
    // No warm-up exclusion here: the point is to count the early
    // windows the S delay disables.
    FarMemoryModel model(nullptr, 0);
    std::vector<JobTrace> traces = {
        steady_trace(1, 10, 1000, 500, 3, 0)};
    SloConfig slo_immediate;
    slo_immediate.enable_delay = 0;
    SloConfig slo_delayed;
    slo_delayed.enable_delay = 6 * kTraceWindow;
    ModelResult immediate = model.evaluate(traces, slo_immediate);
    ModelResult delayed = model.evaluate(traces, slo_delayed);
    EXPECT_GT(immediate.enabled_windows, delayed.enabled_windows);
}

TEST(FarMemoryModel, HigherKMoreConservative)
{
    // Alternating quiet/bursty windows: a high K tracks the bursty
    // periods' high thresholds, capturing less but promoting less.
    FarMemoryModel model;
    JobTrace trace;
    trace.job = 1;
    for (std::size_t w = 0; w < 48; ++w) {
        TraceEntry entry;
        entry.job = 1;
        entry.timestamp = static_cast<SimTime>(w + 1) * kTraceWindow;
        entry.wss_pages = 10000;
        entry.cold_hist.add(0, 10000);
        entry.cold_hist.add(4, 2000);
        entry.cold_hist.add(200, 3000);
        if (w % 4 == 3)
            entry.promo_delta.add(6, 2000);  // burst
        else
            entry.promo_delta.add(2, 10);
        trace.entries.push_back(entry);
    }
    SloConfig low_k;
    low_k.enable_delay = 0;
    low_k.percentile_k = 50.0;
    SloConfig high_k = low_k;
    high_k.percentile_k = 100.0;
    ModelResult low = model.evaluate({trace}, low_k);
    ModelResult high = model.evaluate({trace}, high_k);
    EXPECT_GE(low.mean_captured_pages, high.mean_captured_pages);
    EXPECT_GE(low.p98_promotion_rate, high.p98_promotion_rate);
}

TEST(FarMemoryModel, ParallelMatchesSerial)
{
    std::vector<JobTrace> traces;
    for (JobId j = 1; j <= 16; ++j) {
        traces.push_back(steady_trace(j, 24, 1000 * j, 500 * j,
                                      static_cast<AgeBucket>(j % 7 + 1),
                                      20 * j));
    }
    SloConfig slo;
    slo.enable_delay = 0;
    FarMemoryModel serial(nullptr);
    ThreadPool pool(4);
    FarMemoryModel parallel(&pool);
    ModelResult a = serial.evaluate(traces, slo);
    ModelResult b = parallel.evaluate(traces, slo);
    EXPECT_DOUBLE_EQ(a.mean_captured_pages, b.mean_captured_pages);
    EXPECT_DOUBLE_EQ(a.p98_promotion_rate, b.p98_promotion_rate);
    EXPECT_EQ(a.enabled_windows, b.enabled_windows);
}

TEST(FarMemoryModel, IncompressibleShareDiscountsPromotions)
{
    // Two identical jobs except for their rejection history: the one
    // whose stores mostly fail (incompressible contents) must be
    // modeled with proportionally fewer realizable promotions.
    auto make = [](JobId id, std::uint64_t stores, std::uint64_t rejects) {
        JobTrace trace;
        trace.job = id;
        for (std::size_t w = 0; w < 24; ++w) {
            TraceEntry entry;
            entry.job = id;
            entry.timestamp = static_cast<SimTime>(w + 1) * kTraceWindow;
            entry.wss_pages = 1000;
            entry.cold_hist.add(0, 1000);
            entry.cold_hist.add(200, 500);
            entry.promo_delta.add(3, 50);
            entry.sli.zswap_stores_delta = stores;
            entry.sli.zswap_rejects_delta = rejects;
            trace.entries.push_back(entry);
        }
        return trace;
    };
    SloConfig slo;
    slo.enable_delay = 0;
    FarMemoryModel model(nullptr, 0, 0);
    ModelResult compressible =
        model.evaluate({make(1, 100, 0)}, slo);
    ModelResult half = model.evaluate({make(2, 50, 50)}, slo);
    EXPECT_NEAR(half.mean_promotion_rate,
                compressible.mean_promotion_rate * 0.5, 1e-9);
}

TEST(FarMemoryModel, SkipsJobsWithTooFewWindows)
{
    JobTrace tiny = steady_trace(1, 3, 1000, 500, 3, 10);
    FarMemoryModel model(nullptr, /*warmup=*/0, /*min_scored=*/6);
    ModelResult result = model.evaluate({tiny}, SloConfig{});
    EXPECT_EQ(result.skipped_jobs, 1u);
    EXPECT_EQ(result.total_windows, 0u);
}

/**
 * End-to-end consistency: replaying the telemetry of a real machine
 * run under the same (K, S) must reproduce the same order of captured
 * cold memory the machine actually achieved.
 */
TEST(FarMemoryModel, ConsistentWithOnlineRun)
{
    MachineConfig config;
    config.dram_pages = 256ull * kMiB / kPageSize;
    config.compression = CompressionMode::kModeled;
    Machine machine(0, config, 11);
    TraceLog log;
    machine.set_trace_sink(&log);
    Rng rng(13);
    FleetMix mix = typical_fleet_mix();
    for (JobId id = 1; id <= 6; ++id) {
        auto job = std::make_unique<Job>(
            id, mix.profiles[mix.sample(rng)], rng.next_u64(), 0);
        if (machine.has_capacity_for(job->memcg().num_pages()))
            machine.add_job(std::move(job));
    }
    for (SimTime now = 0; now < 3 * kHour; now += kMinute)
        machine.step(now);

    // Exclude the initial capture transient (machine runs start at
    // t = 0, so this cutoff is start-relative), as the paper's weekly
    // traces implicitly do for long-running jobs.
    TraceLog steady;
    for (const TraceEntry &entry : log.entries()) {
        if (entry.timestamp >= 90 * kMinute)
            steady.append(entry);
    }
    FarMemoryModel model;
    ModelResult result = model.evaluate(steady.by_job(), config.slo);
    double online_stored =
        static_cast<double>(machine.zswap_stored_pages());
    // The model predicts capturable cold memory; the machine's actual
    // stored pages lag it (incompressible rejections, reclaim timing),
    // but both must be the same order of magnitude.
    EXPECT_GT(result.mean_captured_pages, 0.5 * online_stored);
    EXPECT_LT(result.mean_captured_pages, 4.0 * online_stored);
    // And the model must respect the production SLO here, as the
    // machine's controller did.
    EXPECT_LE(result.p98_promotion_rate, 2.0 * config.slo.target_promotion_rate);
}

}  // namespace
}  // namespace sdfm
