/**
 * @file
 * Tests for the fleet-telemetry subsystem: metric primitives
 * (counter/gauge/histogram semantics, bucket boundaries, percentile
 * readout), the named registry, snapshot merging up the
 * machine -> cluster -> fleet topology, the frame exporter, and a
 * multi-threaded increment smoke test.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "core/far_memory_system.h"
#include "telemetry/exporter.h"
#include "telemetry/metric.h"
#include "telemetry/registry.h"
#include "telemetry/snapshot.h"

namespace sdfm {
namespace {

// -- primitives ------------------------------------------------------

TEST(CounterTest, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAddBothDirections)
{
    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(10.0);
    EXPECT_DOUBLE_EQ(g.value(), 10.0);
    g.add(5.5);
    EXPECT_DOUBLE_EQ(g.value(), 15.5);
    g.add(-20.0);
    EXPECT_DOUBLE_EQ(g.value(), -4.5);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds)
{
    // Buckets: (-inf,1], (1,10], (10,100], (100,+inf).
    Histogram h({1.0, 10.0, 100.0});
    h.observe(1.0);    // lands in bucket 0 (inclusive bound)
    h.observe(1.5);    // bucket 1
    h.observe(10.0);   // bucket 1 (inclusive bound)
    h.observe(99.0);   // bucket 2
    h.observe(1000.0); // overflow

    HistogramData d = h.data();
    ASSERT_EQ(d.upper_bounds.size(), 3u);
    ASSERT_EQ(d.counts.size(), 4u);  // + overflow
    EXPECT_EQ(d.counts[0], 1u);
    EXPECT_EQ(d.counts[1], 2u);
    EXPECT_EQ(d.counts[2], 1u);
    EXPECT_EQ(d.counts[3], 1u);
    EXPECT_EQ(d.total_count, 5u);
    EXPECT_DOUBLE_EQ(d.sum, 1.0 + 1.5 + 10.0 + 99.0 + 1000.0);
}

TEST(HistogramTest, MeanAndPercentileReadout)
{
    Histogram h({10.0, 20.0, 30.0, 40.0});
    for (int i = 0; i < 100; ++i)
        h.observe(5.0 + (i % 4) * 10.0);  // 25 each of 5,15,25,35

    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    // Quartile boundaries: p25 sits at the top of the first bucket.
    EXPECT_NEAR(h.percentile(25.0), 10.0, 1e-9);
    EXPECT_NEAR(h.percentile(50.0), 20.0, 1e-9);
    // Interpolated mid-bucket rank: p37.5 is halfway into (10,20].
    EXPECT_NEAR(h.percentile(37.5), 15.0, 1e-9);
    // Extremes clamp to the grid, never extrapolate.
    EXPECT_GE(h.percentile(0.0), 0.0);
    EXPECT_LE(h.percentile(100.0), 40.0);
}

TEST(HistogramTest, OverflowReportsLastFiniteBound)
{
    Histogram h({1.0, 2.0});
    h.observe(50.0);
    h.observe(60.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 2.0);
}

TEST(HistogramTest, EmptyHistogramReadsZero)
{
    Histogram h({1.0, 2.0});
    EXPECT_EQ(h.total_count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(HistogramTest, BoundGenerators)
{
    std::vector<double> exp = exponential_bounds(1e3, 10.0, 4);
    ASSERT_EQ(exp.size(), 4u);
    EXPECT_DOUBLE_EQ(exp[0], 1e3);
    EXPECT_DOUBLE_EQ(exp[3], 1e6);

    std::vector<double> lin = linear_bounds(0.0, 2.5, 3);
    ASSERT_EQ(lin.size(), 3u);
    EXPECT_DOUBLE_EQ(lin[1], 2.5);
    EXPECT_DOUBLE_EQ(lin[2], 5.0);
}

// -- registry --------------------------------------------------------

TEST(MetricRegistryTest, NamesResolveToStableInstances)
{
    MetricRegistry reg;
    Counter &a = reg.counter("zswap.stores");
    a.inc(3);
    // Same name, same instance.
    EXPECT_EQ(&reg.counter("zswap.stores"), &a);
    EXPECT_EQ(reg.counter("zswap.stores").value(), 3u);
    // Different name, different instance.
    EXPECT_NE(&reg.counter("zswap.rejects"), &a);

    Histogram &h = reg.histogram("lat", {1.0, 2.0});
    EXPECT_EQ(&reg.histogram("lat", {1.0, 2.0}), &h);
}

TEST(MetricRegistryTest, SnapshotCopiesEveryKind)
{
    MetricRegistry reg;
    reg.counter("c").inc(7);
    reg.gauge("g").set(2.5);
    reg.histogram("h", {1.0}).observe(0.5);

    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter_or_zero("c"), 7u);
    EXPECT_DOUBLE_EQ(snap.gauge_or_zero("g"), 2.5);
    ASSERT_EQ(snap.histograms.count("h"), 1u);
    EXPECT_EQ(snap.histograms.at("h").total_count, 1u);
    // Absent names read as zero, not as errors.
    EXPECT_EQ(snap.counter_or_zero("absent"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauge_or_zero("absent"), 0.0);
}

// -- snapshot merge --------------------------------------------------

TEST(MetricsSnapshotTest, MergeSumsCountersGaugesAndBuckets)
{
    MetricRegistry a;
    a.counter("c").inc(10);
    a.gauge("g").set(1.0);
    a.histogram("h", {5.0, 10.0}).observe(3.0);

    MetricRegistry b;
    b.counter("c").inc(32);
    b.counter("only_b").inc(1);
    b.gauge("g").set(2.0);
    b.histogram("h", {5.0, 10.0}).observe(7.0);

    MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());

    EXPECT_EQ(merged.counter_or_zero("c"), 42u);
    EXPECT_EQ(merged.counter_or_zero("only_b"), 1u);
    EXPECT_DOUBLE_EQ(merged.gauge_or_zero("g"), 3.0);
    const HistogramData &h = merged.histograms.at("h");
    EXPECT_EQ(h.total_count, 2u);
    EXPECT_EQ(h.counts[0], 1u);  // 3.0
    EXPECT_EQ(h.counts[1], 1u);  // 7.0
    EXPECT_DOUBLE_EQ(h.sum, 10.0);
}

// -- cluster -> fleet rollup ----------------------------------------

FleetConfig
tiny_fleet()
{
    FleetConfig config;
    config.num_clusters = 2;
    config.cluster.num_machines = 2;
    config.cluster.machine.dram_pages = 48ull * kMiB / kPageSize;
    config.cluster.machine.compression = CompressionMode::kModeled;
    config.cluster.mix = typical_fleet_mix();
    config.seed = 11;
    return config;
}

TEST(TelemetryRollupTest, FleetSnapshotIsSumOfClusterSnapshots)
{
    FarMemorySystem fleet(tiny_fleet());
    fleet.populate();
    fleet.run(10 * kMinute);

    MetricsSnapshot total = fleet.fleet_telemetry();

    MetricsSnapshot manual;
    for (const auto &cluster : fleet.clusters())
        manual.merge(cluster->telemetry_snapshot());

    EXPECT_EQ(total.counters, manual.counters);
    for (const auto &[name, value] : total.gauges)
        EXPECT_DOUBLE_EQ(value, manual.gauge_or_zero(name)) << name;

    // The instrumented subsystems actually reported work.
    EXPECT_GT(total.counter_or_zero("machine.accesses"), 0u);
    EXPECT_GT(total.counter_or_zero("kstaled.scans"), 0u);
    EXPECT_GT(total.counter_or_zero("zswap.stores"), 0u);
    EXPECT_GT(total.counter_or_zero("agent.control_rounds"), 0u);
    EXPECT_GT(total.gauge_or_zero("cluster.jobs"), 0.0);
}

TEST(TelemetryRollupTest, MachineCountersMatchSimulatorState)
{
    FleetConfig config = tiny_fleet();
    config.num_clusters = 1;
    FarMemorySystem fleet(config);
    fleet.populate();
    fleet.run(10 * kMinute);

    MetricsSnapshot snap = fleet.fleet_telemetry();
    std::uint64_t stored = 0;
    for (const auto &machine : fleet.clusters()[0]->machines())
        stored += machine->zswap_stored_pages();
    EXPECT_DOUBLE_EQ(snap.gauge_or_zero("zswap.stored_pages"),
                     static_cast<double>(stored));
}

// -- exporter --------------------------------------------------------

TEST(TelemetryExporterTest, JsonlEmitsOneFramePerSnapshot)
{
    MetricRegistry reg;
    reg.counter("zswap.stores").inc(5);
    reg.histogram("lat", {1.0, 2.0}).observe(1.5);

    std::ostringstream out;
    TelemetryExporter exporter(out, TelemetryExporter::Format::kJsonl);
    exporter.write_frame(60, reg.snapshot());
    reg.counter("zswap.stores").inc(1);
    exporter.write_frame(120, reg.snapshot());

    EXPECT_EQ(exporter.frames_written(), 2u);
    std::istringstream lines(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"t_sec\":60"), std::string::npos);
    EXPECT_NE(line.find("\"zswap.stores\":5"), std::string::npos);
    EXPECT_NE(line.find("\"p95\""), std::string::npos);
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"zswap.stores\":6"), std::string::npos);
    EXPECT_FALSE(std::getline(lines, line));  // exactly two frames
}

TEST(TelemetryExporterTest, CsvFixesColumnsOnFirstFrame)
{
    MetricRegistry reg;
    reg.counter("a").inc(1);
    reg.gauge("b").set(2.0);

    std::ostringstream out;
    TelemetryExporter exporter(out, TelemetryExporter::Format::kCsv);
    exporter.write_frame(60, reg.snapshot());
    exporter.write_frame(120, reg.snapshot());

    std::istringstream lines(out.str());
    std::string header, row1, row2, extra;
    ASSERT_TRUE(std::getline(lines, header));
    ASSERT_TRUE(std::getline(lines, row1));
    ASSERT_TRUE(std::getline(lines, row2));
    EXPECT_FALSE(std::getline(lines, extra));
    EXPECT_EQ(header.substr(0, 5), "t_sec");
    EXPECT_NE(header.find("a"), std::string::npos);
    EXPECT_NE(header.find("b"), std::string::npos);
    EXPECT_EQ(row1.substr(0, 2), "60");
}

TEST(TelemetryExporterTest, SummaryTableListsEveryMetric)
{
    MetricRegistry reg;
    reg.counter("zswap.stores").inc(9);
    reg.gauge("zswap.arena_bytes").set(4096.0);
    reg.histogram("controller.threshold", {1.0, 2.0}).observe(2.0);

    std::ostringstream out;
    print_metrics_summary(out, reg.snapshot());
    std::string text = out.str();
    EXPECT_NE(text.find("zswap.stores"), std::string::npos);
    EXPECT_NE(text.find("zswap.arena_bytes"), std::string::npos);
    EXPECT_NE(text.find("controller.threshold"), std::string::npos);
    EXPECT_NE(text.find("p95"), std::string::npos);
}

// -- concurrency smoke test -----------------------------------------

TEST(TelemetryConcurrencyTest, ParallelIncrementsAreNotLost)
{
    MetricRegistry reg;
    Counter &c = reg.counter("c");
    Gauge &g = reg.gauge("g");
    Histogram &h = reg.histogram("h", exponential_bounds(1.0, 2.0, 8));

    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                c.inc();
                g.add(1.0);
                h.observe(static_cast<double>((t + i) % 300));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) *
                                    kPerThread);
    HistogramData d = h.data();
    EXPECT_EQ(d.total_count,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t bucket_sum = 0;
    for (std::uint64_t n : d.counts)
        bucket_sum += n;
    EXPECT_EQ(bucket_sum, d.total_count);
}

}  // namespace
}  // namespace sdfm
