/**
 * @file
 * Tests for the cluster layer: placement, initial packing, churn,
 * eviction-reschedule, and aggregation.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace sdfm {
namespace {

ClusterConfig
small_cluster()
{
    ClusterConfig config;
    config.num_machines = 4;
    config.machine.dram_pages = 128ull * kMiB / kPageSize;
    config.machine.compression = CompressionMode::kModeled;
    config.mix = typical_fleet_mix();
    config.target_utilization = 0.7;
    return config;
}

TEST(ClusterTest, PopulateReachesTargetUtilization)
{
    ClusterConfig config = small_cluster();
    Cluster cluster(0, config, 1);
    cluster.populate(0);
    std::uint64_t total_dram =
        config.num_machines * config.machine.dram_pages;
    std::uint64_t resident = 0;
    for (const auto &machine : cluster.machines())
        resident += machine->resident_pages();
    double utilization = static_cast<double>(resident) /
                         static_cast<double>(total_dram);
    EXPECT_GE(utilization, 0.55);
    EXPECT_LE(utilization, 0.95);
    EXPECT_GT(cluster.num_jobs(), 4u);
}

TEST(ClusterTest, PlacementRespectsCapacity)
{
    ClusterConfig config = small_cluster();
    Cluster cluster(0, config, 2);
    cluster.populate(0);
    for (const auto &machine : cluster.machines())
        EXPECT_LE(machine->used_pages(), config.machine.dram_pages);
}

TEST(ClusterTest, WorstFitSpreadsLoad)
{
    ClusterConfig config = small_cluster();
    config.placement = PlacementStrategy::kWorstFit;
    Cluster cluster(0, config, 3);
    cluster.populate(0);
    // With worst-fit, no machine should be empty while others are
    // heavily loaded.
    for (const auto &machine : cluster.machines())
        EXPECT_GT(machine->jobs().size(), 0u);
}

TEST(ClusterTest, StepAdvancesAndAggregates)
{
    Cluster cluster(0, small_cluster(), 4);
    cluster.populate(0);
    SimTime now = 0;
    for (; now < 90 * kMinute; now += kMinute)
        cluster.step(now);
    EXPECT_GT(cluster.cold_memory_fraction(), 0.02);
    EXPECT_LT(cluster.cold_memory_fraction(), 0.8);
    EXPECT_GT(cluster.coverage(), 0.0);
    EXPECT_FALSE(cluster.machine_cold_fractions().empty());
    EXPECT_FALSE(cluster.job_cold_fractions().empty());
    EXPECT_GT(cluster.trace_log().size(), 0u);
}

TEST(ClusterTest, ChurnReplacesJobs)
{
    ClusterConfig config = small_cluster();
    config.churn_per_hour = 2.0;  // aggressive for the test
    Cluster cluster(0, config, 5);
    cluster.populate(0);
    std::uint64_t churned = 0;
    for (SimTime now = 0; now < kHour; now += kMinute)
        churned += cluster.step(now).churned;
    EXPECT_GT(churned, 0u);
    // The population stays roughly stable (replacements happen).
    EXPECT_GE(cluster.num_jobs(), 4u);
}

TEST(ClusterTest, DeploySloChangesAgentConfig)
{
    Cluster cluster(0, small_cluster(), 6);
    cluster.populate(0);
    SloConfig slo;
    slo.percentile_k = 85.0;
    slo.enable_delay = 700;
    cluster.deploy_slo(slo);
    for (auto &machine : cluster.machines()) {
        EXPECT_DOUBLE_EQ(machine->agent().config().slo.percentile_k, 85.0);
        EXPECT_EQ(machine->agent().config().slo.enable_delay, 700);
    }
}

TEST(ClusterTest, JobIdsUniqueAcrossClusters)
{
    Cluster a(0, small_cluster(), 7);
    Cluster b(1, small_cluster(), 8);
    a.populate(0);
    b.populate(0);
    // Cluster id is encoded in the job id's high bits.
    for (const auto &machine : a.machines())
        for (const auto &job : machine->jobs())
            EXPECT_LT(job->id(), JobId{1} << 40);
    for (const auto &machine : b.machines())
        for (const auto &job : machine->jobs())
            EXPECT_GE(job->id(), JobId{1} << 40);
}

class PlacementParam
    : public ::testing::TestWithParam<PlacementStrategy>
{
};

TEST_P(PlacementParam, AllStrategiesPackAndRun)
{
    ClusterConfig config = small_cluster();
    config.placement = GetParam();
    Cluster cluster(0, config, 9);
    cluster.populate(0);
    EXPECT_GT(cluster.num_jobs(), 0u);
    for (SimTime now = 0; now < 10 * kMinute; now += kMinute)
        cluster.step(now);
    for (const auto &machine : cluster.machines())
        EXPECT_LE(machine->used_pages(), config.machine.dram_pages);
}

INSTANTIATE_TEST_SUITE_P(Strategies, PlacementParam,
                         ::testing::Values(PlacementStrategy::kWorstFit,
                                           PlacementStrategy::kFirstFit,
                                           PlacementStrategy::kRandomFit));

}  // namespace
}  // namespace sdfm
