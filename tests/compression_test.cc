/**
 * @file
 * Tests for the compression substrate: szo round-trip properties,
 * content-class compressibility, the real/modeled compressor
 * backends, and the cost model.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compression/compressor.h"
#include "compression/cost_model.h"
#include "compression/page_content.h"
#include "compression/szo.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sdfm {
namespace {

std::vector<std::uint8_t>
compress_all(const std::vector<std::uint8_t> &src)
{
    std::vector<std::uint8_t> dst(szo_max_compressed_size(src.size()));
    std::size_t n = szo_compress(src.data(), src.size(), dst.data(),
                                 dst.size());
    dst.resize(n);
    return dst;
}

std::vector<std::uint8_t>
decompress_all(const std::vector<std::uint8_t> &compressed,
               std::size_t expected)
{
    std::vector<std::uint8_t> out(expected + 64);
    std::size_t n = szo_decompress(compressed.data(), compressed.size(),
                                   out.data(), out.size());
    out.resize(n);
    return out;
}

// ----------------------------------------------------------------- szo

TEST(Szo, EmptyInput)
{
    std::uint8_t dst[16];
    EXPECT_EQ(szo_compress(nullptr, 0, dst, sizeof(dst)), 0u);
}

TEST(Szo, RoundTripTinyInputs)
{
    for (std::size_t len = 1; len <= 16; ++len) {
        std::vector<std::uint8_t> src(len);
        for (std::size_t i = 0; i < len; ++i)
            src[i] = static_cast<std::uint8_t>(i * 37 + 1);
        auto compressed = compress_all(src);
        ASSERT_FALSE(compressed.empty());
        EXPECT_EQ(decompress_all(compressed, len), src);
    }
}

TEST(Szo, RoundTripAllZeros)
{
    std::vector<std::uint8_t> src(4096, 0);
    auto compressed = compress_all(src);
    EXPECT_LT(compressed.size(), 64u);  // RLE-like via overlap copy
    EXPECT_EQ(decompress_all(compressed, src.size()), src);
}

TEST(Szo, RoundTripRepeatingPattern)
{
    std::vector<std::uint8_t> src;
    for (int i = 0; i < 512; ++i)
        for (char b : {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'})
            src.push_back(static_cast<std::uint8_t>(b));
    auto compressed = compress_all(src);
    EXPECT_LT(compressed.size(), src.size() / 10);
    EXPECT_EQ(decompress_all(compressed, src.size()), src);
}

TEST(Szo, RandomDataExpandsButRoundTrips)
{
    Rng rng(1);
    std::vector<std::uint8_t> src(4096);
    for (auto &b : src)
        b = static_cast<std::uint8_t>(rng.next_u64());
    auto compressed = compress_all(src);
    EXPECT_GT(compressed.size(), src.size());  // incompressible
    EXPECT_LE(compressed.size(), szo_max_compressed_size(src.size()));
    EXPECT_EQ(decompress_all(compressed, src.size()), src);
}

TEST(Szo, CapOverflowReturnsZero)
{
    Rng rng(2);
    std::vector<std::uint8_t> src(4096);
    for (auto &b : src)
        b = static_cast<std::uint8_t>(rng.next_u64());
    std::vector<std::uint8_t> dst(1024);
    EXPECT_EQ(szo_compress(src.data(), src.size(), dst.data(), dst.size()),
              0u);
}

TEST(Szo, DecompressRejectsTruncated)
{
    std::vector<std::uint8_t> src(1024, 'x');
    auto compressed = compress_all(src);
    ASSERT_GT(compressed.size(), 4u);
    // Drop the tail: either decode fails (0) or yields a short,
    // validly-decoded prefix -- never a crash or over-read.
    std::vector<std::uint8_t> truncated(compressed.begin(),
                                        compressed.end() - 3);
    std::vector<std::uint8_t> out(2048);
    std::size_t n = szo_decompress(truncated.data(), truncated.size(),
                                   out.data(), out.size());
    EXPECT_LE(n, src.size());
}

TEST(Szo, DecompressRejectsBadOffset)
{
    // Token demanding a match before the start of output.
    std::vector<std::uint8_t> bad = {0x10, 'a', 0xFF, 0x00, 0x00};
    std::uint8_t out[64];
    EXPECT_EQ(szo_decompress(bad.data(), bad.size(), out, sizeof(out)), 0u);
}

TEST(Szo, DecompressRespectsDstCap)
{
    std::vector<std::uint8_t> src(4096, 'y');
    auto compressed = compress_all(src);
    std::uint8_t out[128];
    EXPECT_EQ(szo_decompress(compressed.data(), compressed.size(), out,
                             sizeof(out)),
              0u);
}

/** Property test: round-trip over many random structured buffers. */
class SzoRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SzoRoundTrip, MixedContent)
{
    Rng rng(GetParam());
    // Mix runs of repeated bytes, motifs, and noise.
    std::vector<std::uint8_t> src;
    std::size_t target = 1 + rng.next_below(8192);
    while (src.size() < target) {
        switch (rng.next_below(3)) {
          case 0: {  // run
            std::uint8_t b = static_cast<std::uint8_t>(rng.next_u64());
            std::size_t n = 1 + rng.next_below(300);
            src.insert(src.end(), n, b);
            break;
          }
          case 1: {  // copy earlier chunk
            if (src.empty())
                break;
            std::size_t from = rng.next_below(src.size());
            std::size_t n = 1 + rng.next_below(200);
            for (std::size_t i = 0; i < n; ++i)
                src.push_back(src[from + (i % (src.size() - from))]);
            break;
          }
          default: {  // noise
            std::size_t n = 1 + rng.next_below(60);
            for (std::size_t i = 0; i < n; ++i)
                src.push_back(static_cast<std::uint8_t>(rng.next_u64()));
            break;
          }
        }
    }
    src.resize(target);
    auto compressed = compress_all(src);
    ASSERT_FALSE(compressed.empty());
    EXPECT_EQ(decompress_all(compressed, src.size()), src);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SzoRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------- szo levels

class SzoLevelRoundTrip
    : public ::testing::TestWithParam<std::tuple<SzoLevel, int>>
{
};

TEST_P(SzoLevelRoundTrip, AllClassesAllLevels)
{
    auto [level, cls_int] = GetParam();
    auto cls = static_cast<ContentClass>(cls_int);
    std::uint8_t page[kPageSize];
    generate_page_content(cls, 777, page);
    std::vector<std::uint8_t> dst(szo_max_compressed_size(kPageSize));
    std::size_t n = szo_compress_level(page, kPageSize, dst.data(),
                                       dst.size(), level);
    ASSERT_GT(n, 0u);
    std::uint8_t out[kPageSize];
    ASSERT_EQ(szo_decompress(dst.data(), n, out, sizeof(out)), kPageSize);
    EXPECT_EQ(std::memcmp(out, page, kPageSize), 0)
        << szo_level_name(level) << "/" << content_class_name(cls);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SzoLevelRoundTrip,
    ::testing::Combine(::testing::Values(SzoLevel::kFast,
                                         SzoLevel::kDefault,
                                         SzoLevel::kHigh),
                       ::testing::Range(0, 5)));

TEST(SzoLevels, HighRatioAtLeastDefault)
{
    // The chain search can only find equal-or-longer matches.
    for (ContentClass cls :
         {ContentClass::kText, ContentClass::kStructured,
          ContentClass::kBinary}) {
        double default_total = 0.0, high_total = 0.0;
        std::vector<std::uint8_t> dst(szo_max_compressed_size(kPageSize));
        for (unsigned i = 0; i < 30; ++i) {
            std::uint8_t page[kPageSize];
            generate_page_content(cls, 900 + i, page);
            default_total += static_cast<double>(szo_compress_level(
                page, kPageSize, dst.data(), dst.size(),
                SzoLevel::kDefault));
            high_total += static_cast<double>(szo_compress_level(
                page, kPageSize, dst.data(), dst.size(),
                SzoLevel::kHigh));
        }
        EXPECT_LE(high_total, default_total * 1.01)
            << content_class_name(cls);
    }
}

TEST(SzoLevels, DefaultIsAlias)
{
    std::uint8_t page[kPageSize];
    generate_page_content(ContentClass::kText, 42, page);
    std::vector<std::uint8_t> a(szo_max_compressed_size(kPageSize));
    std::vector<std::uint8_t> b(szo_max_compressed_size(kPageSize));
    std::size_t na = szo_compress(page, kPageSize, a.data(), a.size());
    std::size_t nb = szo_compress_level(page, kPageSize, b.data(),
                                        b.size(), SzoLevel::kDefault);
    ASSERT_EQ(na, nb);
    EXPECT_EQ(std::memcmp(a.data(), b.data(), na), 0);
}

TEST(SzoLevels, Names)
{
    EXPECT_STREQ(szo_level_name(SzoLevel::kFast), "fast");
    EXPECT_STREQ(szo_level_name(SzoLevel::kDefault), "default");
    EXPECT_STREQ(szo_level_name(SzoLevel::kHigh), "high");
}

// -------------------------------------------------------- page content

TEST(PageContent, Deterministic)
{
    std::uint8_t a[kPageSize], b[kPageSize];
    generate_page_content(ContentClass::kText, 42, a);
    generate_page_content(ContentClass::kText, 42, b);
    EXPECT_EQ(std::memcmp(a, b, kPageSize), 0);
}

TEST(PageContent, SeedChangesContent)
{
    std::uint8_t a[kPageSize], b[kPageSize];
    generate_page_content(ContentClass::kText, 42, a);
    generate_page_content(ContentClass::kText, 43, b);
    EXPECT_NE(std::memcmp(a, b, kPageSize), 0);
}

TEST(PageContent, ClassNames)
{
    EXPECT_STREQ(content_class_name(ContentClass::kZero), "zero");
    EXPECT_STREQ(content_class_name(ContentClass::kIncompressible),
                 "incompressible");
}

TEST(ContentMixTest, ProbabilitiesNormalize)
{
    ContentMix mix(1.0, 1.0, 1.0, 1.0, 1.0);
    double total = 0.0;
    for (int c = 0; c < static_cast<int>(ContentClass::kNumClasses); ++c)
        total += mix.probability(static_cast<ContentClass>(c));
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ContentMixTest, PickMatchesWeights)
{
    ContentMix mix(0.0, 0.0, 1.0, 0.0, 1.0);
    int structured = 0, incompressible = 0;
    for (std::uint64_t s = 0; s < 10000; ++s) {
        ContentClass c = mix.pick(s * 2654435761ULL);
        if (c == ContentClass::kStructured)
            ++structured;
        else if (c == ContentClass::kIncompressible)
            ++incompressible;
        else
            FAIL() << "zero-weight class drawn";
    }
    EXPECT_NEAR(structured, 5000, 300);
    EXPECT_NEAR(incompressible, 5000, 300);
}

TEST(ContentMixTest, TypicalIncompressibleShare)
{
    // Figure 9a: ~31% of cold memory is incompressible.
    ContentMix mix = ContentMix::typical();
    EXPECT_NEAR(mix.probability(ContentClass::kIncompressible), 0.31, 0.02);
}

// --------------------------------------------------- class ratio bands

struct ClassRatioBand
{
    ContentClass cls;
    double min_ratio;
    double max_ratio;
};

class ClassCompressibility
    : public ::testing::TestWithParam<ClassRatioBand>
{
};

TEST_P(ClassCompressibility, RealRatioInBand)
{
    const ClassRatioBand &band = GetParam();
    RealCompressor rc;
    double sum = 0.0;
    const int n = 50;
    for (int i = 0; i < n; ++i) {
        CompressionResult r =
            rc.compress_page(band.cls, 5000 + static_cast<unsigned>(i));
        sum += static_cast<double>(r.compressed_size);
    }
    double ratio = kPageSize / (sum / n);
    EXPECT_GE(ratio, band.min_ratio);
    EXPECT_LE(ratio, band.max_ratio);
}

INSTANTIATE_TEST_SUITE_P(
    Bands, ClassCompressibility,
    ::testing::Values(
        ClassRatioBand{ContentClass::kZero, 50.0, 1000.0},
        ClassRatioBand{ContentClass::kText, 2.5, 6.0},
        ClassRatioBand{ContentClass::kStructured, 2.0, 4.0},
        ClassRatioBand{ContentClass::kBinary, 1.6, 3.0},
        ClassRatioBand{ContentClass::kIncompressible, 0.9, 1.05}));

// ---------------------------------------------------------- compressor

TEST(RealCompressorTest, IncompressibleRejected)
{
    RealCompressor rc;
    CompressionResult r =
        rc.compress_page(ContentClass::kIncompressible, 1);
    EXPECT_FALSE(r.accepted());
    EXPECT_GT(r.compressed_size, kMaxZswapPayload);
    EXPECT_GT(r.compress_cycles, 0.0);  // cycles burned anyway
}

TEST(RealCompressorTest, DeterministicPerSeed)
{
    RealCompressor rc;
    CompressionResult a = rc.compress_page(ContentClass::kText, 99);
    CompressionResult b = rc.compress_page(ContentClass::kText, 99);
    EXPECT_EQ(a.compressed_size, b.compressed_size);
}

TEST(ModeledCompressorTest, DeterministicPerSeed)
{
    ModeledCompressor mc;
    CompressionResult a = mc.compress_page(ContentClass::kBinary, 7);
    CompressionResult b = mc.compress_page(ContentClass::kBinary, 7);
    EXPECT_EQ(a.compressed_size, b.compressed_size);
}

TEST(ModeledCompressorTest, MatchesRealWithinTolerance)
{
    // The modeled per-class means must track the real compressor
    // within 20% so fleet-scale runs stay faithful.
    RealCompressor rc;
    for (ContentClass cls :
         {ContentClass::kText, ContentClass::kStructured,
          ContentClass::kBinary}) {
        double real_sum = 0.0;
        const int n = 100;
        for (int i = 0; i < n; ++i) {
            real_sum += rc.compress_page(cls, 7000 + static_cast<unsigned>(i))
                            .compressed_size;
        }
        double real_mean = real_sum / n;
        double modeled = ModeledCompressor::class_mean_payload(cls);
        EXPECT_NEAR(modeled / real_mean, 1.0, 0.2)
            << content_class_name(cls);
    }
}

TEST(ModeledCompressorTest, IncompressibleAlwaysRejected)
{
    ModeledCompressor mc;
    for (std::uint64_t s = 0; s < 200; ++s) {
        EXPECT_FALSE(
            mc.compress_page(ContentClass::kIncompressible, s).accepted());
    }
}

TEST(CompressionResultTest, Ratio)
{
    CompressionResult r;
    r.compressed_size = 1024;
    EXPECT_DOUBLE_EQ(r.ratio(), 4.0);
}

TEST(MakeCompressorTest, SelectsBackend)
{
    auto real = make_compressor(CompressionMode::kReal);
    auto modeled = make_compressor(CompressionMode::kModeled);
    EXPECT_NE(dynamic_cast<RealCompressor *>(real.get()), nullptr);
    EXPECT_NE(dynamic_cast<ModeledCompressor *>(modeled.get()), nullptr);
}

// ----------------------------------------------------------- cost model

TEST(CostModelTest, AffineInBytes)
{
    CostModel model;
    double small = model.compress_cycles(1024);
    double big = model.compress_cycles(4096);
    EXPECT_GT(big, small);
    EXPECT_NEAR(big - small,
                model.params().compress_cycles_per_input_byte * 3072,
                1e-9);
}

TEST(CostModelTest, DecompressLatencyNearPaper)
{
    // Figure 9b: ~6.4 us median for a typical (3x-compressed) page.
    CostModel model;
    double us = model.cycles_to_us(model.decompress_cycles(1365, kPageSize));
    EXPECT_GT(us, 4.0);
    EXPECT_LT(us, 9.0);
}

TEST(CostModelTest, JitterIsUnbiasedish)
{
    CostModel model;
    Rng rng(3);
    double base = model.cycles_to_us(model.decompress_cycles(1365,
                                                             kPageSize));
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += model.sample_decompress_latency_us(1365, kPageSize, rng);
    // lognormal(0, sigma) has mean exp(sigma^2/2) ~ 1.0085.
    EXPECT_NEAR(sum / n / base, 1.0085, 0.02);
}

TEST(CostModelTest, TailAbovemedian)
{
    CostModel model;
    Rng rng(5);
    SampleSet samples;
    for (int i = 0; i < 20000; ++i)
        samples.add(
            model.sample_decompress_latency_us(1365, kPageSize, rng));
    EXPECT_GT(samples.percentile(98.0), samples.percentile(50.0) * 1.2);
}

}  // namespace
}  // namespace sdfm
