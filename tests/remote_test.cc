/**
 * @file
 * Tests for the remote-memory tier: placement, crypto and latency
 * accounting, donor-failure data loss (Section 2.1's failure-domain
 * expansion), and machine-level integration.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "mem/remote_tier.h"
#include "node/machine.h"
#include "workload/job.h"

namespace sdfm {
namespace {

RemoteTierParams
small_remote(std::uint64_t capacity, std::uint32_t donors = 4)
{
    RemoteTierParams params;
    params.capacity_pages = capacity;
    params.num_donors = donors;
    return params;
}

struct Rig
{
    explicit Rig(std::uint32_t pages, RemoteTierParams params)
        : compressor(make_compressor(CompressionMode::kModeled)),
          zswap(compressor.get(), 1), remote(params, 2),
          cg(1, pages, 42, ContentMix::typical(), 0)
    {
    }

    std::unique_ptr<Compressor> compressor;
    Zswap zswap;
    RemoteTier remote;
    Memcg cg;
};

TEST(RemoteTier, StoreLoadRoundTrip)
{
    Rig rig(10, small_remote(100));
    ASSERT_TRUE(rig.remote.store(rig.cg, 0));
    EXPECT_TRUE(rig.cg.page_test(0, kPageInFarTier));
    EXPECT_EQ(rig.remote.used_pages(), 1u);
    // Encryption cycles charged on the way out.
    EXPECT_GT(rig.cg.stats().compress_cycles, 0.0);

    rig.remote.load(rig.cg, 0);
    EXPECT_FALSE(rig.cg.page_test(0, kPageInFarTier));
    EXPECT_EQ(rig.remote.used_pages(), 0u);
    EXPECT_EQ(rig.cg.stats().nvm_promotions, 1u);
    // Decryption cycles charged on the way back.
    EXPECT_GT(rig.cg.stats().decompress_cycles, 0.0);
    EXPECT_GT(rig.cg.stats().nvm_read_latency_us_sum, 0.0);
}

TEST(RemoteTier, CapacityBound)
{
    Rig rig(10, small_remote(3));
    EXPECT_TRUE(rig.remote.store(rig.cg, 0));
    EXPECT_TRUE(rig.remote.store(rig.cg, 1));
    EXPECT_TRUE(rig.remote.store(rig.cg, 2));
    EXPECT_FALSE(rig.remote.store(rig.cg, 3));
    EXPECT_EQ(rig.remote.stats().rejected_full, 1u);
}

TEST(RemoteTier, RoundRobinSpreadsAcrossDonors)
{
    Rig rig(40, small_remote(100, /*donors=*/4));
    for (PageId p = 0; p < 40; ++p)
        ASSERT_TRUE(rig.remote.store(rig.cg, p));
    for (std::uint32_t donor = 0; donor < 4; ++donor)
        EXPECT_EQ(rig.remote.donor_pages(donor), 10u);
}

TEST(RemoteTier, DonorFailureLosesPagesAndNamesVictims)
{
    Rig rig(40, small_remote(100, 4));
    for (PageId p = 0; p < 40; ++p)
        rig.remote.store(rig.cg, p);
    std::vector<JobId> victims = rig.remote.fail_donor(2);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], rig.cg.id());
    EXPECT_EQ(rig.remote.stats().pages_lost, 10u);
    EXPECT_EQ(rig.remote.used_pages(), 30u);
    EXPECT_EQ(rig.remote.donor_pages(2), 0u);
    // Other donors' pages survive.
    EXPECT_EQ(rig.remote.donor_pages(1), 10u);
}

TEST(RemoteTier, FailureOfEmptyDonorHarmless)
{
    Rig rig(10, small_remote(100, 4));
    EXPECT_TRUE(rig.remote.fail_donor(3).empty());
    EXPECT_EQ(rig.remote.stats().pages_lost, 0u);
}

TEST(RemoteTier, DropAllClearsPlacements)
{
    Rig rig(20, small_remote(100, 4));
    for (PageId p = 0; p < 20; ++p)
        rig.remote.store(rig.cg, p);
    rig.remote.drop_all(rig.cg);
    EXPECT_EQ(rig.remote.used_pages(), 0u);
    for (std::uint32_t donor = 0; donor < 4; ++donor)
        EXPECT_EQ(rig.remote.donor_pages(donor), 0u);
}

TEST(RemoteTier, HeavierLatencyTailThanNvm)
{
    RemoteTierParams params = small_remote(10000);
    RemoteTier remote(params, 7);
    NvmTierParams nvm_params;
    nvm_params.capacity_pages = 10000;
    NvmTier nvm(nvm_params, 7);

    Memcg cg_a(1, 5000, 42, ContentMix::typical(), 0);
    Memcg cg_b(2, 5000, 42, ContentMix::typical(), 0);
    for (PageId p = 0; p < 5000; ++p) {
        remote.store(cg_a, p);
        nvm.store(cg_b, p);
        remote.load(cg_a, p);
        nvm.load(cg_b, p);
    }
    double remote_mean = cg_a.stats().nvm_read_latency_us_sum / 5000.0;
    double nvm_mean = cg_b.stats().nvm_read_latency_us_sum / 5000.0;
    EXPECT_GT(remote_mean, 4.0 * nvm_mean);
}

TEST(RemoteMachine, DonorFailureKillsAndReports)
{
    MachineConfig config;
    config.dram_pages = 128ull * kMiB / kPageSize;
    config.compression = CompressionMode::kModeled;
    config.remote.capacity_pages = 1 << 20;
    config.remote_donor_failures_per_hour = 60.0;  // every minute-ish
    Machine machine(0, config, 3);
    ASSERT_LT(machine.tiers().find(TierKind::kRemote),
              machine.tiers().size());
    machine.add_job(std::make_unique<Job>(1, profile_by_name("logs"), 7,
                                          0));
    machine.add_job(std::make_unique<Job>(2, profile_by_name("kv_cache"),
                                          8, 0));
    std::uint64_t failures = 0, evicted = 0;
    for (SimTime now = 0; now < 3 * kHour; now += kMinute) {
        MachineStepResult result = machine.step(now);
        failures += result.donor_failures;
        evicted += result.evicted.size();
    }
    EXPECT_GT(failures, 0u);
    // At least one failure hit a donor holding pages, killing jobs.
    EXPECT_GT(evicted, 0u);
}

TEST(RemoteMachine, MutuallyExclusiveWithNvm)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig config;
    config.nvm.capacity_pages = 100;
    config.remote.capacity_pages = 100;
    EXPECT_DEATH({ Machine machine(0, config, 3); }, "assertion failed");
}

}  // namespace
}  // namespace sdfm
