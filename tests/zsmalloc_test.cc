/**
 * @file
 * Tests for the zsmalloc arena: accounting invariants, payload
 * round-trips, fragmentation behaviour, compaction, and the
 * global-vs-per-memcg arena comparison the paper describes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "util/units.h"
#include "zsmalloc/zsmalloc.h"

namespace sdfm {
namespace {

TEST(Zsmalloc, StoreReleaseAccounting)
{
    ZsmallocArena arena;
    ZsHandle h = arena.store(1000);
    EXPECT_NE(h, 0u);
    EXPECT_EQ(arena.live_objects(), 1u);
    EXPECT_EQ(arena.stored_bytes(), 1000u);
    EXPECT_GT(arena.pool_bytes(), 0u);
    arena.release(h);
    EXPECT_EQ(arena.live_objects(), 0u);
    EXPECT_EQ(arena.stored_bytes(), 0u);
    EXPECT_EQ(arena.pool_bytes(), 0u);
}

TEST(Zsmalloc, PayloadSizeQuery)
{
    ZsmallocArena arena;
    ZsHandle h = arena.store(777);
    EXPECT_EQ(arena.payload_size(h), 777u);
}

TEST(Zsmalloc, PayloadBytesRoundTrip)
{
    ZsmallocArena arena(/*keep_payload_bytes=*/true);
    std::vector<std::uint8_t> data(513);
    Rng rng(1);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next_u64());
    ZsHandle h = arena.store(static_cast<std::uint32_t>(data.size()),
                             data.data());
    const std::uint8_t *stored = arena.payload(h);
    ASSERT_NE(stored, nullptr);
    EXPECT_EQ(std::vector<std::uint8_t>(stored, stored + data.size()), data);
}

TEST(Zsmalloc, NoPayloadBytesByDefault)
{
    ZsmallocArena arena;
    ZsHandle h = arena.store(100);
    EXPECT_EQ(arena.payload(h), nullptr);
}

TEST(Zsmalloc, PoolSharedWithinSizeClass)
{
    ZsmallocArena arena;
    // Objects of ~128 B share zspages: pool grows sublinearly.
    std::vector<ZsHandle> handles;
    for (int i = 0; i < 32; ++i)
        handles.push_back(arena.store(128));
    // 32 * 128 B = 4 KiB of payload; the pool should be a few pages,
    // not 32.
    EXPECT_LE(arena.pool_bytes(), 4u * kPageSize);
    for (ZsHandle h : handles)
        arena.release(h);
    EXPECT_EQ(arena.pool_bytes(), 0u);
}

TEST(Zsmalloc, DistinctSizeClassesDistinctPools)
{
    ZsmallocArena arena;
    arena.store(100);
    std::uint64_t after_first = arena.pool_bytes();
    arena.store(3000);
    EXPECT_GT(arena.pool_bytes(), after_first);
}

TEST(Zsmalloc, FragmentationAfterSparseFrees)
{
    ZsmallocArena arena;
    std::vector<ZsHandle> handles;
    for (int i = 0; i < 1024; ++i)
        handles.push_back(arena.store(512));
    double before = arena.fragmentation();
    // Free every other object: holes appear, pool stays.
    for (std::size_t i = 0; i < handles.size(); i += 2)
        arena.release(handles[i]);
    double after = arena.fragmentation();
    EXPECT_GT(after, before);
    EXPECT_GT(after, 0.3);
}

TEST(Zsmalloc, CompactReclaimsSparseZspages)
{
    ZsmallocArena arena;
    std::vector<ZsHandle> handles;
    for (int i = 0; i < 1024; ++i)
        handles.push_back(arena.store(512));
    for (std::size_t i = 0; i < handles.size(); i += 2)
        arena.release(handles[i]);
    std::uint64_t pool_before = arena.pool_bytes();
    std::uint64_t released = arena.compact();
    EXPECT_GT(released, 0u);
    EXPECT_EQ(arena.pool_bytes(), pool_before - released);
    // After compaction the pool is near-minimal for the live bytes.
    EXPECT_LT(arena.fragmentation(), 0.15);
    // All live handles still resolve.
    for (std::size_t i = 1; i < handles.size(); i += 2)
        EXPECT_EQ(arena.payload_size(handles[i]), 512u);
}

TEST(Zsmalloc, CompactPreservesPayloadBytes)
{
    ZsmallocArena arena(/*keep_payload_bytes=*/true);
    Rng rng(7);
    std::vector<ZsHandle> handles;
    std::vector<std::vector<std::uint8_t>> payloads;
    for (int i = 0; i < 300; ++i) {
        std::vector<std::uint8_t> data(256);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next_u64());
        handles.push_back(arena.store(256, data.data()));
        payloads.push_back(std::move(data));
    }
    for (std::size_t i = 0; i < handles.size(); i += 3)
        arena.release(handles[i]);
    arena.compact();
    for (std::size_t i = 0; i < handles.size(); ++i) {
        if (i % 3 == 0)
            continue;
        const std::uint8_t *stored = arena.payload(handles[i]);
        ASSERT_NE(stored, nullptr);
        EXPECT_EQ(std::vector<std::uint8_t>(stored, stored + 256),
                  payloads[i]);
    }
}

TEST(Zsmalloc, CompactOnEmptyArena)
{
    ZsmallocArena arena;
    EXPECT_EQ(arena.compact(), 0u);
}

TEST(Zsmalloc, ReleasedZspageSlotReused)
{
    ZsmallocArena arena;
    ZsHandle a = arena.store(4000);
    std::uint64_t pool = arena.pool_bytes();
    arena.release(a);
    ZsHandle b = arena.store(4000);
    EXPECT_EQ(arena.pool_bytes(), pool);  // same backing re-acquired
    arena.release(b);
}

TEST(Zsmalloc, StatsCounters)
{
    ZsmallocArena arena;
    ZsHandle h1 = arena.store(64);
    ZsHandle h2 = arena.store(64);
    arena.release(h1);
    arena.compact();
    const ZsmallocStats &stats = arena.stats();
    EXPECT_EQ(stats.total_allocs, 2u);
    EXPECT_EQ(stats.total_frees, 1u);
    EXPECT_EQ(stats.compactions, 1u);
    arena.release(h2);
}

TEST(ZsmallocDeath, DoubleFreeCaught)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ZsmallocArena arena;
    ZsHandle h = arena.store(100);
    arena.release(h);
    EXPECT_DEATH(arena.release(h), "assertion failed");
}

TEST(ZsmallocDeath, InvalidHandleCaught)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ZsmallocArena arena;
    EXPECT_DEATH(arena.payload_size(0), "assertion failed");
    EXPECT_DEATH(arena.payload_size(12345), "assertion failed");
}

/**
 * Property: over random alloc/free/compact interleavings, accounting
 * stays exact and fragmentation is bounded after compaction.
 */
class ZsmallocChurn : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ZsmallocChurn, AccountingInvariants)
{
    Rng rng(GetParam());
    ZsmallocArena arena;
    std::vector<std::pair<ZsHandle, std::uint32_t>> live;
    std::uint64_t expected_bytes = 0;
    for (int op = 0; op < 4000; ++op) {
        double u = rng.next_double();
        if (u < 0.55 || live.empty()) {
            auto size =
                static_cast<std::uint32_t>(24 + rng.next_below(4072));
            live.emplace_back(arena.store(size), size);
            expected_bytes += size;
        } else if (u < 0.97) {
            std::size_t pick = rng.next_below(live.size());
            arena.release(live[pick].first);
            expected_bytes -= live[pick].second;
            live[pick] = live.back();
            live.pop_back();
        } else {
            arena.compact();
        }
        ASSERT_EQ(arena.stored_bytes(), expected_bytes);
        ASSERT_EQ(arena.live_objects(), live.size());
        ASSERT_GE(arena.pool_bytes(), arena.stored_bytes());
    }
    arena.compact();
    std::uint64_t pool_after_compact = arena.pool_bytes();
    // Compaction is idempotent: a second pass frees nothing.
    EXPECT_EQ(arena.compact(), 0u);
    EXPECT_EQ(arena.pool_bytes(), pool_after_compact);
    if (expected_bytes > 256 * kPageSize) {
        // Residual overhead after compaction is internal (size-class
        // rounding and zspage tail waste), bounded well below the
        // sparse-zspage fragmentation compaction removes.
        EXPECT_LT(arena.fragmentation(), 0.5);
    }
    for (auto &[h, size] : live)
        arena.release(h);
    EXPECT_EQ(arena.pool_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZsmallocChurn,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/**
 * The paper's Section 5.1 finding: one machine-global arena
 * fragments far less than per-memcg arenas under many small jobs.
 */
TEST(ZsmallocArenaGranularity, GlobalBeatsPerMemcg)
{
    Rng rng(99);
    constexpr std::size_t kJobs = 40;
    constexpr std::size_t kObjsPerJob = 60;

    // Per-memcg: each job its own arena.
    std::vector<std::unique_ptr<ZsmallocArena>> per_job;
    std::vector<std::vector<ZsHandle>> per_job_handles(kJobs);
    for (std::size_t j = 0; j < kJobs; ++j)
        per_job.push_back(std::make_unique<ZsmallocArena>());
    // Global: one arena for everyone.
    ZsmallocArena global;
    std::vector<ZsHandle> global_handles;

    Rng sizes_rng(17);
    for (std::size_t j = 0; j < kJobs; ++j) {
        for (std::size_t i = 0; i < kObjsPerJob; ++i) {
            auto size =
                static_cast<std::uint32_t>(64 + sizes_rng.next_below(2000));
            per_job_handles[j].push_back(per_job[j]->store(size));
            global_handles.push_back(global.store(size));
        }
    }
    // Random frees (same pattern for both).
    Rng free_rng(23);
    for (std::size_t j = 0; j < kJobs; ++j) {
        for (std::size_t i = 0; i < kObjsPerJob; ++i) {
            if (free_rng.next_bool(0.5)) {
                per_job[j]->release(per_job_handles[j][i]);
                global.release(global_handles[j * kObjsPerJob + i]);
            }
        }
    }

    std::uint64_t per_job_pool = 0;
    for (auto &arena : per_job)
        per_job_pool += arena->pool_bytes();
    // Identical live bytes, so pool size differences are pure
    // fragmentation: global must hold them in no more memory.
    EXPECT_LE(global.pool_bytes(), per_job_pool);
    EXPECT_LE(global.fragmentation() + 0.02,
              1.0 - static_cast<double>(global.stored_bytes()) /
                        static_cast<double>(per_job_pool));
}

}  // namespace
}  // namespace sdfm
