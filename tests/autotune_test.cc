/**
 * @file
 * Tests for the autotuner stack: GP regression accuracy, the
 * constrained GP-UCB bandit on synthetic black-box problems, and the
 * end-to-end autotuning pipeline over synthetic traces.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "autotune/autotuner.h"
#include "autotune/gp.h"
#include "autotune/gp_bandit.h"
#include "util/rng.h"

namespace sdfm {
namespace {

// ------------------------------------------------------------------ GP

TEST(GaussianProcessTest, InterpolatesObservations)
{
    std::vector<Vector> x = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
    Vector y;
    for (const auto &xi : x)
        y.push_back(std::sin(6.0 * xi[0]));
    GaussianProcess gp;
    gp.fit(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
        GpPrediction pred = gp.predict(x[i]);
        EXPECT_NEAR(pred.mean, y[i], 0.05);
        EXPECT_LT(pred.variance, 0.05);
    }
}

TEST(GaussianProcessTest, PredictsBetweenObservations)
{
    std::vector<Vector> x;
    Vector y;
    for (int i = 0; i <= 20; ++i) {
        double xi = i / 20.0;
        x.push_back({xi});
        y.push_back(std::sin(6.0 * xi));
    }
    GaussianProcess gp;
    gp.fit(x, y);
    for (double xi : {0.13, 0.37, 0.61, 0.89}) {
        GpPrediction pred = gp.predict({xi});
        EXPECT_NEAR(pred.mean, std::sin(6.0 * xi), 0.05) << xi;
    }
}

TEST(GaussianProcessTest, UncertaintyGrowsAwayFromData)
{
    std::vector<Vector> x = {{0.4}, {0.5}, {0.6}};
    Vector y = {1.0, 2.0, 1.5};
    GaussianProcess gp;
    GpParams params;
    params.length_scales = {0.1};
    params.noise_variance = 1e-6;
    gp.fit_with_params(x, y, params);
    GpPrediction near = gp.predict({0.5});
    GpPrediction far = gp.predict({0.0});
    EXPECT_LT(near.variance, far.variance);
}

TEST(GaussianProcessTest, ConstantTargetsHandled)
{
    std::vector<Vector> x = {{0.1}, {0.5}, {0.9}};
    Vector y = {3.0, 3.0, 3.0};
    GaussianProcess gp;
    gp.fit(x, y);
    EXPECT_NEAR(gp.predict({0.3}).mean, 3.0, 1e-6);
}

TEST(GaussianProcessTest, BothKernelsWork)
{
    std::vector<Vector> x = {{0.0}, {0.5}, {1.0}};
    Vector y = {0.0, 1.0, 0.0};
    for (KernelType kernel : {KernelType::kRbf, KernelType::kMatern52}) {
        GaussianProcess gp(kernel);
        gp.fit(x, y);
        EXPECT_NEAR(gp.predict({0.5}).mean, 1.0, 0.1);
    }
}

TEST(GaussianProcessTest, LmlPrefersReasonableScales)
{
    // Observations from a smooth function: a sane length scale must
    // beat an absurdly small one.
    std::vector<Vector> x;
    Vector y;
    for (int i = 0; i <= 12; ++i) {
        double xi = i / 12.0;
        x.push_back({xi});
        y.push_back(std::sin(3.0 * xi));
    }
    // Standardize y as fit() would.
    double mean = 0.0;
    for (double v : y)
        mean += v;
    mean /= static_cast<double>(y.size());
    double var = 0.0;
    for (double v : y)
        var += (v - mean) * (v - mean);
    double stddev = std::sqrt(var / static_cast<double>(y.size()));
    Vector ys;
    for (double v : y)
        ys.push_back((v - mean) / stddev);

    GaussianProcess gp;
    GpParams sane;
    sane.length_scales = {0.5};
    sane.noise_variance = 1e-4;
    GpParams tiny = sane;
    tiny.length_scales = {0.005};
    EXPECT_GT(gp.log_marginal_likelihood(x, ys, sane),
              gp.log_marginal_likelihood(x, ys, tiny));
}

TEST(GaussianProcessTest, TwoDimensionalFit)
{
    std::vector<Vector> x;
    Vector y;
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
        double a = rng.next_double(), b = rng.next_double();
        x.push_back({a, b});
        y.push_back(a * a + 0.5 * b);
    }
    GaussianProcess gp;
    gp.fit(x, y);
    EXPECT_NEAR(gp.predict({0.5, 0.5}).mean, 0.5, 0.1);
    EXPECT_NEAR(gp.predict({0.9, 0.1}).mean, 0.86, 0.12);
}

// -------------------------------------------------------------- bandit

/** Synthetic constrained problem: maximize a smooth objective whose
 *  peak violates the constraint; the constrained optimum is on the
 *  feasibility boundary. */
struct SyntheticProblem
{
    double objective(const Vector &x) const
    {
        return 10.0 - 8.0 * (x[0] - 0.8) * (x[0] - 0.8) -
               4.0 * (x[1] - 0.5) * (x[1] - 0.5);
    }
    double constraint(const Vector &x) const
    {
        return x[0];  // feasible iff x0 <= 0.6
    }
    static constexpr double kLimit = 0.6;
    /** Best feasible objective: at x = (0.6, 0.5). */
    double best_feasible() const { return objective({0.6, 0.5}); }
};

TEST(GpBanditTest, FindsConstrainedOptimum)
{
    SyntheticProblem problem;
    BanditConfig config;
    GpBandit bandit(config, SyntheticProblem::kLimit, 17);
    Rng rng(19);
    // Random bootstrap.
    for (int i = 0; i < 4; ++i) {
        Vector x = {rng.next_double(), rng.next_double()};
        bandit.add_observation(x, problem.objective(x),
                               problem.constraint(x));
    }
    for (int i = 0; i < 16; ++i) {
        Vector x = bandit.suggest();
        bandit.add_observation(x, problem.objective(x),
                               problem.constraint(x));
    }
    BanditObservation best = bandit.best_feasible();
    EXPECT_LE(best.constraint, SyntheticProblem::kLimit);
    EXPECT_GT(best.objective, problem.best_feasible() - 0.5);
}

TEST(GpBanditTest, BeatsRandomSearchOnAverage)
{
    SyntheticProblem problem;
    double bandit_total = 0.0, random_total = 0.0;
    const int kRepeats = 5;
    const int kTrials = 14;
    for (int rep = 0; rep < kRepeats; ++rep) {
        BanditConfig config;
        GpBandit bandit(config, SyntheticProblem::kLimit,
                        100 + static_cast<unsigned>(rep));
        Rng boot(200 + static_cast<unsigned>(rep));
        for (int i = 0; i < 3; ++i) {
            Vector x = {boot.next_double(), boot.next_double()};
            bandit.add_observation(x, problem.objective(x),
                                   problem.constraint(x));
        }
        for (int i = 3; i < kTrials; ++i) {
            Vector x = bandit.suggest();
            bandit.add_observation(x, problem.objective(x),
                                   problem.constraint(x));
        }
        bandit_total += bandit.best_feasible().objective;

        Rng rand(300 + static_cast<unsigned>(rep));
        double best_random = -1e300;
        for (int i = 0; i < kTrials; ++i) {
            Vector x = {rand.next_double(), rand.next_double()};
            if (problem.constraint(x) <= SyntheticProblem::kLimit)
                best_random = std::max(best_random, problem.objective(x));
        }
        random_total += best_random;
    }
    EXPECT_GE(bandit_total, random_total);
}

TEST(GpBanditTest, SuggestStaysInUnitCube)
{
    BanditConfig config;
    GpBandit bandit(config, 0.5, 7);
    Rng rng(9);
    for (int i = 0; i < 6; ++i) {
        Vector x = bandit.suggest();
        ASSERT_EQ(x.size(), 2u);
        for (double v : x) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
        bandit.add_observation(x, rng.next_double(), rng.next_double());
    }
}

TEST(GpBanditTest, BestFeasibleFallsBackToLeastViolating)
{
    BanditConfig config;
    GpBandit bandit(config, 0.1, 7);
    bandit.add_observation({0.5, 0.5}, 1.0, 0.9);
    bandit.add_observation({0.2, 0.2}, 5.0, 0.5);
    BanditObservation best = bandit.best_feasible();
    EXPECT_DOUBLE_EQ(best.constraint, 0.5);
}

// ----------------------------------------------------------- autotuner

JobTrace
tunable_trace(JobId job)
{
    // A job where low thresholds violate the SLO but age >= 5 is
    // safe, with a deep cold pool: the tuner must find a K/S that
    // captures the pool without tripping the constraint.
    JobTrace trace;
    trace.job = job;
    Rng rng(job);
    for (std::size_t w = 0; w < 48; ++w) {
        TraceEntry entry;
        entry.job = job;
        entry.timestamp = static_cast<SimTime>(w + 1) * kTraceWindow;
        entry.wss_pages = 8000;
        entry.cold_hist.add(0, 8000);
        entry.cold_hist.add(3, 1000);
        entry.cold_hist.add(100, 4000);
        entry.promo_delta.add(1, 400 + rng.next_below(100));
        entry.promo_delta.add(3, 30 + rng.next_below(10));
        if (w % 8 == 7)
            entry.promo_delta.add(8, 300);  // occasional deep burst
        trace.entries.push_back(entry);
    }
    return trace;
}

TEST(AutotunerTest, FindsFeasibleNearOptimalConfig)
{
    std::vector<JobTrace> traces;
    for (JobId j = 1; j <= 8; ++j)
        traces.push_back(tunable_trace(j));
    FarMemoryModel model;
    SloConfig base;
    base.percentile_k = 98.0;
    base.enable_delay = 300;

    AutotunerConfig config;
    config.iterations = 14;
    config.seed = 5;
    Autotuner tuner(config, base, &model, &traces);
    SloConfig best = tuner.run();

    ASSERT_EQ(tuner.history().size(), config.iterations);
    ModelResult best_result = model.evaluate(traces, best);
    // Feasible, and close to the landscape's known feasible optimum:
    // a threshold past the deep bursts captures the 4000-page pool of
    // each of the 8 jobs.
    EXPECT_LE(best_result.p98_promotion_rate,
              base.target_promotion_rate + 1e-12);
    EXPECT_GE(best_result.mean_captured_pages, 31000.0);
    // The tuner never reports an infeasible trial as its choice when
    // a feasible one was seen.
    bool any_feasible = false;
    for (const TrialRecord &record : tuner.history())
        any_feasible |= record.feasible;
    EXPECT_TRUE(any_feasible);
}

TEST(AutotunerTest, DecodeEncodeRoundTrip)
{
    AutotunerConfig config;
    FarMemoryModel model;
    std::vector<JobTrace> traces;
    Autotuner tuner(config, SloConfig{}, &model, &traces);
    Vector x = {0.3, 0.7, 0.4};
    SloConfig slo = tuner.decode(x);
    Vector back = tuner.encode(slo);
    EXPECT_NEAR(back[0], 0.3, 1e-9);
    EXPECT_NEAR(back[1], 0.7, 0.01);
    EXPECT_NEAR(back[2], 0.4, 0.01);
    EXPECT_GE(slo.percentile_k, config.k_min);
    EXPECT_LE(slo.percentile_k, config.k_max);
    EXPECT_GE(slo.enable_delay, config.s_min);
    EXPECT_LE(slo.enable_delay, config.s_max);
    EXPECT_GE(slo.history_window, config.w_min);
    EXPECT_LE(slo.history_window, config.w_max);
}

class SearchStrategyParam
    : public ::testing::TestWithParam<SearchStrategy>
{
};

TEST_P(SearchStrategyParam, AllStrategiesProduceFeasible)
{
    std::vector<JobTrace> traces;
    for (JobId j = 1; j <= 4; ++j)
        traces.push_back(tunable_trace(j));
    FarMemoryModel model;
    SloConfig base;
    AutotunerConfig config;
    config.iterations = 10;
    config.strategy = GetParam();
    Autotuner tuner(config, base, &model, &traces);
    SloConfig best = tuner.run();
    ModelResult result = model.evaluate(traces, best);
    bool any_feasible = false;
    for (const TrialRecord &record : tuner.history())
        any_feasible |= record.feasible;
    if (any_feasible) {
        EXPECT_LE(result.p98_promotion_rate,
                  base.target_promotion_rate + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Strategies, SearchStrategyParam,
                         ::testing::Values(SearchStrategy::kGpBandit,
                                           SearchStrategy::kRandom,
                                           SearchStrategy::kGrid));

}  // namespace
}  // namespace sdfm
