/**
 * @file
 * Tests for the control plane: the threshold controller (Section 4.3
 * algorithm), the node agent, and the machine integration including
 * SLO compliance, policies, and OOM eviction.
 */

#include <gtest/gtest.h>

#include "node/machine.h"
#include "node/node_agent.h"
#include "node/threshold_controller.h"
#include "workload/job.h"

namespace sdfm {
namespace {

// -------------------------------------------------- threshold controller

TEST(BestThreshold, PicksSmallestMeetingBudget)
{
    AgeHistogram promo;
    promo.add(1, 50);   // 50 would-be promotions at age 1
    promo.add(5, 10);
    promo.add(20, 2);
    // WSS 10000, P = 0.2%/min, 1 minute: budget = 20 promotions.
    // T=1: 62 > 20. T=2: 12 <= 20. -> 2.
    EXPECT_EQ(ThresholdController::best_threshold(promo, 10000, 0.002, 1.0),
              2);
}

TEST(BestThreshold, EmptyHistogramGivesMinimum)
{
    AgeHistogram promo;
    EXPECT_EQ(ThresholdController::best_threshold(promo, 1000, 0.002, 1.0),
              1);
}

TEST(BestThreshold, AllBucketsViolatedGivesMax)
{
    AgeHistogram promo;
    promo.add(255, 1000);
    EXPECT_EQ(ThresholdController::best_threshold(promo, 10, 0.002, 1.0),
              255);
}

TEST(BestThreshold, BudgetScalesWithPeriod)
{
    AgeHistogram promo;
    promo.add(1, 15);
    // Budget over 1 min = 10 -> threshold 2; over 2 min = 20 -> 1.
    EXPECT_EQ(ThresholdController::best_threshold(promo, 5000, 0.002, 1.0),
              2);
    EXPECT_EQ(ThresholdController::best_threshold(promo, 5000, 0.002, 2.0),
              1);
}

TEST(BestThreshold, PaperWorkedExample)
{
    // Section 4.3: pages A (idle 5 min) and B (idle 10 min) accessed
    // again 1 minute ago. T = 8 min sees 1 promo/min, T = 2 min sees
    // 2 promos/min.
    AgeHistogram promo;
    promo.add(age_to_bucket(5 * 60), 1);   // A
    promo.add(age_to_bucket(10 * 60), 1);  // B
    EXPECT_EQ(promo.count_at_least(age_to_bucket(8 * 60)), 1u);
    EXPECT_EQ(promo.count_at_least(age_to_bucket(2 * 60)), 2u);
}

TEST(ThresholdControllerTest, DisabledDuringEnableDelay)
{
    SloConfig slo;
    slo.enable_delay = 300;
    ThresholdController ctrl(slo, /*job_start=*/1000);
    AgeHistogram promo;
    EXPECT_EQ(ctrl.update(1060, promo, 100), 0);
    EXPECT_EQ(ctrl.update(1299, promo, 100), 0);
    EXPECT_NE(ctrl.update(1300, promo, 100), 0);
}

TEST(ThresholdControllerTest, KthPercentileOfPool)
{
    SloConfig slo;
    slo.enable_delay = 0;
    slo.percentile_k = 100.0;  // max of pool
    ThresholdController ctrl(slo, 0);
    // Feed histories whose best thresholds are 1 except one period
    // needing 10.
    AgeHistogram quiet;
    AgeHistogram busy;
    busy.add(9, 1000);  // needs threshold 10 to dodge
    SimTime t = 60;
    for (int i = 0; i < 20; ++i, t += 60)
        ctrl.update(t, quiet, 1000);
    ctrl.update(t, busy, 1000);
    t += 60;
    // With K=100 the busy period dominates from the pool.
    EXPECT_EQ(ctrl.update(t, quiet, 1000), 10);
}

TEST(ThresholdControllerTest, SpikeOverridesPercentile)
{
    SloConfig slo;
    slo.enable_delay = 0;
    slo.percentile_k = 50.0;
    ThresholdController ctrl(slo, 0);
    AgeHistogram quiet;
    SimTime t = 60;
    for (int i = 0; i < 30; ++i, t += 60)
        ctrl.update(t, quiet, 1000);
    // Sudden burst of cold re-access: the last minute's best must be
    // used even though the pool median is 1.
    AgeHistogram burst;
    burst.add(40, 5000);
    EXPECT_EQ(ctrl.update(t, burst, 1000), 41);
}

TEST(ThresholdControllerTest, PoolWindowBounded)
{
    SloConfig slo;
    slo.enable_delay = 0;
    slo.percentile_k = 100.0;
    slo.history_window = 5;
    ThresholdController ctrl(slo, 0);
    AgeHistogram busy;
    busy.add(9, 1000);
    AgeHistogram quiet;
    SimTime t = 60;
    ctrl.update(t, busy, 1000);  // old spike
    t += 60;
    // Five quiet periods push the spike out of the window.
    for (int i = 0; i < 5; ++i, t += 60)
        ctrl.update(t, quiet, 1000);
    EXPECT_EQ(ctrl.current_threshold(), 1);
}

TEST(ThresholdControllerTest, SetSloShrinksPool)
{
    SloConfig slo;
    slo.enable_delay = 0;
    slo.history_window = 100;
    ThresholdController ctrl(slo, 0);
    AgeHistogram quiet;
    SimTime t = 60;
    for (int i = 0; i < 50; ++i, t += 60)
        ctrl.update(t, quiet, 1000);
    SloConfig tighter = slo;
    tighter.history_window = 10;
    ctrl.set_slo(tighter);  // must not blow up; pool trimmed
    EXPECT_NE(ctrl.update(t, quiet, 1000), 0);
}

// ----------------------------------------------------------- node agent

TEST(NodeAgentTest, ProgramsMemcgState)
{
    NodeAgentConfig config;
    config.slo.enable_delay = 0;
    NodeAgent agent(config);
    auto compressor = make_compressor(CompressionMode::kModeled);
    Zswap zswap(compressor.get(), 1);
    Memcg cg(1, 100, 42, ContentMix::typical(), 0);
    agent.register_job(cg);
    std::vector<Memcg *> cgs = {&cg};
    agent.control(60, cgs, 1.0);
    EXPECT_TRUE(cg.zswap_enabled());
    EXPECT_GT(cg.reclaim_threshold(), 0);
    EXPECT_EQ(cg.soft_limit_pages(), cg.wss_pages());
}

TEST(NodeAgentTest, ReactivePolicyDisablesProactiveReclaim)
{
    NodeAgentConfig config;
    config.policy = FarMemoryPolicy::kReactive;
    NodeAgent agent(config);
    Memcg cg(1, 100, 42, ContentMix::typical(), 0);
    agent.register_job(cg);
    std::vector<Memcg *> cgs = {&cg};
    agent.control(600, cgs, 1.0);
    EXPECT_EQ(cg.reclaim_threshold(), 0);
    EXPECT_FALSE(cg.zswap_enabled());
}

TEST(NodeAgentTest, StaticPolicyFixedThreshold)
{
    NodeAgentConfig config;
    config.policy = FarMemoryPolicy::kStatic;
    config.static_threshold = 7;
    config.slo.enable_delay = 120;
    NodeAgent agent(config);
    Memcg cg(1, 100, 42, ContentMix::typical(), 0);
    agent.register_job(cg);
    std::vector<Memcg *> cgs = {&cg};
    agent.control(60, cgs, 1.0);
    EXPECT_EQ(cg.reclaim_threshold(), 0);  // still in delay
    agent.control(180, cgs, 1.0);
    EXPECT_EQ(cg.reclaim_threshold(), 7);
}

TEST(NodeAgentTest, TelemetryExportsDeltas)
{
    NodeAgentConfig config;
    config.slo.enable_delay = 0;
    NodeAgent agent(config);
    Memcg cg(1, 100, 42, ContentMix::typical(), 0);
    agent.register_job(cg);
    std::vector<Memcg *> cgs = {&cg};

    cg.mutable_promo_hist().add(4, 10);
    cg.stats().zswap_promotions = 10;
    TraceLog log;
    agent.export_telemetry(300, cgs, &log);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.entries()[0].promo_delta.at(4), 10u);
    EXPECT_EQ(log.entries()[0].sli.zswap_promotions_delta, 10u);

    // Second window: only the delta shows.
    cg.mutable_promo_hist().add(4, 3);
    cg.stats().zswap_promotions = 13;
    agent.export_telemetry(600, cgs, &log);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log.entries()[1].promo_delta.at(4), 3u);
    EXPECT_EQ(log.entries()[1].sli.zswap_promotions_delta, 3u);
}

TEST(NodeAgentTest, NullSinkIsNoop)
{
    NodeAgentConfig config;
    NodeAgent agent(config);
    Memcg cg(1, 100, 42, ContentMix::typical(), 0);
    agent.register_job(cg);
    std::vector<Memcg *> cgs = {&cg};
    agent.export_telemetry(300, cgs, nullptr);  // must not crash
    SUCCEED();
}

TEST(NodeAgentTest, UnregisterStopsTracking)
{
    NodeAgentConfig config;
    NodeAgent agent(config);
    Memcg cg(1, 100, 42, ContentMix::typical(), 0);
    agent.register_job(cg);
    agent.unregister_job(1);
    agent.register_job(cg);  // re-register works after unregister
    SUCCEED();
}

// -------------------------------------------------------------- machine

MachineConfig
small_machine()
{
    MachineConfig config;
    config.dram_pages = 256ull * kMiB / kPageSize;
    config.compression = CompressionMode::kModeled;
    return config;
}

std::unique_ptr<Job>
make_job(JobId id, const char *profile_name, std::uint64_t seed,
         SimTime start = 0)
{
    return std::make_unique<Job>(id, profile_by_name(profile_name), seed,
                                 start);
}

TEST(MachineTest, AddRemoveJobAccounting)
{
    Machine machine(0, small_machine(), 1);
    Job &job = machine.add_job(make_job(1, "web_frontend", 2));
    std::uint32_t pages = job.memcg().num_pages();
    EXPECT_EQ(machine.resident_pages(), pages);
    machine.remove_job(1);
    EXPECT_EQ(machine.resident_pages(), 0u);
    EXPECT_EQ(machine.zswap().pool_bytes(), 0u);
}

TEST(MachineTest, StepProducesColdCoverage)
{
    Machine machine(0, small_machine(), 1);
    machine.add_job(make_job(1, "kv_cache", 3));
    machine.add_job(make_job(2, "logs", 4));
    for (SimTime now = 0; now < 2 * kHour; now += kMinute)
        machine.step(now);
    EXPECT_GT(machine.zswap_stored_pages(), 0u);
    EXPECT_GT(machine.cold_memory_coverage(), 0.05);
    EXPECT_LE(machine.cold_memory_coverage(), 1.0);
}

TEST(MachineTest, PromotionSloHeldAtSteadyState)
{
    Machine machine(0, small_machine(), 1);
    for (JobId id = 1; id <= 4; ++id)
        machine.add_job(make_job(id, id % 2 ? "kv_cache" : "bigtable", id));
    // Warm up for 2 hours.
    SimTime now = 0;
    for (; now < 2 * kHour; now += kMinute)
        machine.step(now);
    // Measure promotions vs WSS for 1 hour.
    std::vector<std::uint64_t> promo_before;
    for (auto &job : machine.jobs())
        promo_before.push_back(job->memcg().stats().zswap_promotions);
    double minutes = 60.0;
    for (; now < 3 * kHour; now += kMinute)
        machine.step(now);
    std::size_t i = 0;
    for (auto &job : machine.jobs()) {
        double promos = static_cast<double>(
            job->memcg().stats().zswap_promotions - promo_before[i]);
        double wss = static_cast<double>(job->memcg().wss_pages());
        if (wss > 0.0) {
            double rate = promos / minutes / wss;
            // The SLO is 0.2%/min at the 98th percentile; individual
            // jobs occasionally burst, so allow 2x headroom here.
            EXPECT_LT(rate, 0.004) << "job " << job->id();
        }
        ++i;
    }
}

TEST(MachineTest, OffPolicyNeverCompresses)
{
    MachineConfig config = small_machine();
    config.policy = FarMemoryPolicy::kOff;
    Machine machine(0, config, 1);
    machine.add_job(make_job(1, "logs", 5));
    for (SimTime now = 0; now < kHour; now += kMinute)
        machine.step(now);
    EXPECT_EQ(machine.zswap_stored_pages(), 0u);
}

TEST(MachineTest, ReactivePolicyIdleUntilPressure)
{
    MachineConfig config = small_machine();
    config.policy = FarMemoryPolicy::kReactive;
    Machine machine(0, config, 1);
    machine.add_job(make_job(1, "logs", 5));  // small wrt DRAM
    for (SimTime now = 0; now < kHour; now += kMinute)
        machine.step(now);
    // Plenty of free memory: reactive zswap does nothing ("memory
    // savings are not materialized until the machines are fully
    // saturated", Section 3.2).
    EXPECT_EQ(machine.zswap_stored_pages(), 0u);
    EXPECT_EQ(machine.counters().direct_reclaims, 0u);
}

TEST(MachineTest, EvictsBestEffortOnOom)
{
    MachineConfig config = small_machine();
    config.dram_pages = 24 * 1024;  // 96 MiB
    config.policy = FarMemoryPolicy::kOff;
    Machine machine(0, config, 1);
    // Fill with one high-priority and several best-effort jobs whose
    // combined footprint exceeds DRAM.
    machine.add_job(make_job(1, "web_frontend", 11));
    std::uint64_t evicted = 0;
    JobId id = 2;
    while (machine.resident_pages() < config.dram_pages + 8192) {
        machine.add_job(make_job(id, "batch_analytics", id * 13));
        ++id;
    }
    MachineStepResult result = machine.step(0);
    evicted += result.evicted.size();
    EXPECT_GT(evicted, 0u);
    EXPECT_LE(machine.used_pages(), config.dram_pages);
    // The high-priority job survived.
    EXPECT_NE(machine.find_job(1), nullptr);
}

TEST(MachineTest, QualificationModeVerifiesEveryPromotion)
{
    MachineConfig config = small_machine();
    config.compression = CompressionMode::kReal;
    config.verify_zswap_roundtrip = true;
    Machine machine(0, config, 1);
    machine.add_job(make_job(1, "logs", 5));
    for (SimTime now = 0; now < kHour; now += kMinute)
        machine.step(now);
    const ZswapStats &stats = machine.zswap().stats();
    EXPECT_GT(stats.promotions, 0u);
    EXPECT_EQ(stats.verified_roundtrips, stats.promotions);
}

TEST(MachineTest, TelemetryFlowsToSink)
{
    Machine machine(0, small_machine(), 1);
    TraceLog log;
    machine.set_trace_sink(&log);
    machine.add_job(make_job(1, "bigtable", 17));
    for (SimTime now = 0; now < kHour; now += kMinute)
        machine.step(now);
    // One entry per job per 5 minutes.
    EXPECT_GE(log.size(), 10u);
    EXPECT_LE(log.size(), 13u);
}

TEST(MachineTest, ScanSpikeRaisesThresholdThenRecovers)
{
    // A job whose pages are deeply cold gets fully captured; a scan
    // event then touches a swath of old pages, and the controller's
    // max(percentile, last best) rule must push the threshold up in
    // the very next control period (Section 4.3's responsiveness
    // requirement).
    MachineConfig config = small_machine();
    Machine machine(0, config, 1);
    JobProfile profile = profile_by_name("logs");
    profile.scan_interval_mean = 0;  // we trigger the spike by hand
    machine.add_job(std::make_unique<Job>(1, profile, 11, 0));
    for (SimTime now = 0; now < 2 * kHour; now += kMinute)
        machine.step(now);
    Job *job = machine.find_job(1);
    ASSERT_NE(job, nullptr);
    AgeBucket before = job->memcg().reclaim_threshold();
    ASSERT_GT(before, 0);

    // Synthetic scan: touch every page (many are old / in zswap).
    for (PageId p = 0; p < job->memcg().num_pages(); ++p)
        job->memcg().touch(p, false, machine.zswap());
    // The very next control period must react (the max(percentile,
    // last best) spike rule) before the pool percentile can pull the
    // threshold back down.
    machine.step(2 * kHour);
    AgeBucket after = job->memcg().reclaim_threshold();
    EXPECT_GT(after, before);
}

TEST(MachineTest, HasCapacityFor)
{
    MachineConfig config = small_machine();
    config.dram_pages = 10000;
    Machine machine(0, config, 1);
    EXPECT_TRUE(machine.has_capacity_for(10000));
    EXPECT_FALSE(machine.has_capacity_for(10001));
}

/**
 * Property test: machine-level accounting invariants hold through
 * randomized configurations and multi-hour runs.
 */
class MachineInvariants : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MachineInvariants, HoldUnderRandomConfigs)
{
    Rng rng(GetParam());
    MachineConfig config;
    config.dram_pages = (96 + rng.next_below(160)) * kMiB / kPageSize;
    config.compression = CompressionMode::kModeled;
    config.policy = rng.next_bool(0.5) ? FarMemoryPolicy::kProactive
                                       : FarMemoryPolicy::kStatic;
    config.static_threshold =
        static_cast<AgeBucket>(2 + rng.next_below(30));
    config.slo.percentile_k = 85.0 + rng.next_double() * 15.0;
    config.slo.enable_delay =
        static_cast<SimTime>(rng.next_below(1200));
    config.kstaled.scan_stride =
        static_cast<std::uint32_t>(1 + rng.next_below(4));
    if (rng.next_bool(0.4))
        config.nvm.capacity_pages = 1024 + rng.next_below(8192);
    Machine machine(0, config, rng.next_u64());

    FleetMix mix = typical_fleet_mix();
    JobId next_id = 1;
    for (int attempts = 0; attempts < 40; ++attempts) {
        JobProfile profile = mix.profiles[mix.sample(rng)];
        if (rng.next_bool(0.3))
            profile.huge_page_frac = rng.next_double() * 0.6;
        auto job = std::make_unique<Job>(next_id, profile,
                                         rng.next_u64(), 0);
        if (machine.has_capacity_for(job->memcg().num_pages())) {
            machine.add_job(std::move(job));
            ++next_id;
        }
    }

    for (SimTime now = 0; now < 90 * kMinute; now += kMinute) {
        machine.step(now);
        // Accounting invariants.
        ASSERT_LE(machine.used_pages(), config.dram_pages);
        std::uint64_t job_zswap = 0, job_nvm = 0, job_resident = 0;
        for (const auto &job : machine.jobs()) {
            const Memcg &cg = job->memcg();
            job_zswap += cg.zswap_pages();
            job_nvm += cg.tier_pages();
            job_resident += cg.resident_pages();
            ASSERT_EQ(cg.zswap_pages() + cg.tier_pages() +
                          cg.resident_pages(),
                      cg.num_pages());
        }
        ASSERT_EQ(job_zswap, machine.zswap_stored_pages());
        ASSERT_EQ(job_nvm, machine.tier_stored_pages());
        ASSERT_EQ(job_resident, machine.resident_pages());
        // The arena never claims more stored than pool bytes.
        ASSERT_GE(machine.zswap().pool_bytes(),
                  machine.zswap().arena().stored_bytes());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineInvariants,
                         ::testing::Values(101, 102, 103, 104, 105));

}  // namespace
}  // namespace sdfm
