/**
 * @file
 * Tests for the N-tier TierStack: a three-tier DRAM -> NVM -> remote
 * -> zswap chain exercising band routing, breaker fallback to a
 * shallower tier, whole-stack checkpoint round-trips, and donor
 * failure at stack depth 3.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ckpt/checkpoint.h"
#include "mem/kreclaimd.h"
#include "mem/kstaled.h"
#include "mem/memcg.h"
#include "mem/nvm_tier.h"
#include "mem/remote_tier.h"
#include "mem/tier_stack.h"
#include "mem/zswap.h"
#include "node/machine.h"
#include "workload/job.h"

namespace sdfm {
namespace {

NvmTierParams
small_nvm(std::uint64_t capacity)
{
    NvmTierParams params;
    params.capacity_pages = capacity;
    return params;
}

RemoteTierParams
small_remote(std::uint64_t capacity)
{
    RemoteTierParams params;
    params.capacity_pages = capacity;
    return params;
}

/**
 * A borrowed three-tier stack: zswap at index 0, NVM claiming ages in
 * [T, 4T), remote memory claiming [4T, 16T), everything colder falls
 * through to the zswap catch-all. The remote tier carries a
 * hair-trigger breaker so fallback is one record_failure() away.
 */
struct Rig
{
    explicit Rig(std::uint32_t pages,
                 ContentMix mix = ContentMix(0.0, 0.0, 1.0, 0.0, 0.0))
        : compressor(make_compressor(CompressionMode::kModeled)),
          zswap(compressor.get(), 1), nvm(small_nvm(1 << 16), 2),
          remote(small_remote(1 << 16), 3), cg(1, pages, 42, mix, 0)
    {
        TierSpec base;
        base.label = "zswap";
        stack.set_base(base, &zswap);
        TierSpec nvm_spec;
        nvm_spec.label = "nvm";
        nvm_spec.band_lo = 1.0;
        nvm_spec.band_hi = 4.0;
        stack.add_tier(nvm_spec, &nvm);
        TierSpec remote_spec;
        remote_spec.label = "remote";
        remote_spec.band_lo = 4.0;
        remote_spec.band_hi = 16.0;
        remote_spec.breaker_enabled = true;
        remote_spec.breaker.failure_threshold = 1;
        stack.add_tier(remote_spec, &remote);
        cg.set_zswap_enabled(true);
        cg.set_reclaim_threshold(1);
    }

    DemotionPlan &
    route()
    {
        BandRoutingPolicy().plan(stack, plan);
        return plan;
    }

    std::unique_ptr<Compressor> compressor;
    Zswap zswap;
    NvmTier nvm;
    RemoteTier remote;
    Memcg cg;
    Kstaled kstaled;
    Kreclaimd kreclaimd;
    TierStack stack;
    DemotionPlan plan;
};

MachineConfig
three_tier_config()
{
    MachineConfig config;
    config.dram_pages = 16 * 1024;
    TierConfig nvm;
    nvm.kind = TierKind::kNvm;
    nvm.nvm.capacity_pages = 1 << 16;
    nvm.band_lo = 1.0;
    nvm.band_hi = 2.0;
    TierConfig remote;
    remote.kind = TierKind::kRemote;
    remote.remote.capacity_pages = 1 << 18;
    remote.band_lo = 2.0;
    remote.band_hi = 0.0;  // unbounded: remote takes the deep cold
    remote.breaker_enabled = true;
    config.tiers = {nvm, remote};
    return config;
}

TEST(ThreeTierStack, WiringAndLookup)
{
    Rig rig(4);
    EXPECT_EQ(rig.stack.size(), 3u);
    EXPECT_EQ(rig.stack.deep_size(), 2u);
    EXPECT_EQ(rig.stack.find(TierKind::kNvm), 1u);
    EXPECT_EQ(rig.stack.find(TierKind::kRemote), 2u);
    EXPECT_EQ(&rig.stack.tier(0), &rig.zswap);
    EXPECT_EQ(rig.stack.tier(1).stack_index(), 1u);
    EXPECT_EQ(rig.stack.tier(2).stack_index(), 2u);
}

TEST(ThreeTierStack, BandsRouteByDepthOfCold)
{
    Rig rig(10);
    rig.kstaled.scan(rig.cg);  // all pages at age 1: the NVM band
    for (PageId p = 0; p < 3; ++p)
        rig.cg.set_page_age(p, 8);  // remote band [4T, 16T)
    for (PageId p = 3; p < 5; ++p)
        rig.cg.set_page_age(p, 50);  // past every band: zswap catch-all

    ReclaimResult result = rig.kreclaimd.reclaim_cold(rig.cg, rig.route());
    EXPECT_EQ(result.pages_stored, 10u);
    EXPECT_EQ(result.pages_to_tier, 8u);
    EXPECT_EQ(rig.nvm.used_pages(), 5u);
    EXPECT_EQ(rig.remote.used_pages(), 3u);
    EXPECT_EQ(rig.cg.zswap_pages(), 2u);
    EXPECT_EQ(rig.plan.stored[1], 5u);
    EXPECT_EQ(rig.plan.stored[2], 3u);
    for (PageId p = 3; p < 5; ++p)
        EXPECT_TRUE(rig.cg.page_test(p, kPageInZswap)) << p;
    for (PageId p = 5; p < 10; ++p)
        EXPECT_TRUE(rig.cg.page_test(p, kPageInFarTier)) << p;
}

TEST(ThreeTierStack, OpenBreakerHandsBandToShallowerTier)
{
    Rig rig(10);
    rig.kstaled.scan(rig.cg);
    for (PageId p = 0; p < 10; ++p)
        rig.cg.set_page_age(p, 8);  // everything in the remote band

    // Trip the remote breaker (failure_threshold = 1) before planning.
    EXPECT_TRUE(rig.stack.entry(2).breaker.record_failure());
    ASSERT_EQ(rig.stack.entry(2).breaker.state(), BreakerState::kOpen);

    ReclaimResult result = rig.kreclaimd.reclaim_cold(rig.cg, rig.route());
    EXPECT_EQ(result.pages_stored, 10u);
    EXPECT_EQ(rig.remote.used_pages(), 0u);
    EXPECT_EQ(rig.nvm.used_pages(), 10u);  // the band fell one tier up
}

TEST(ThreeTierStack, MachineDigestMixesEveryDeepTier)
{
    MachineConfig config = three_tier_config();
    Machine machine(0, config, 3);
    ASSERT_EQ(machine.tiers().deep_size(), 2u);
    std::uint64_t before = machine.state_digest();

    // A page landing in the deepest tier must perturb the digest.
    machine.add_job(std::make_unique<Job>(1, profile_by_name("kv_cache"),
                                          7, 0));
    Job *job = machine.find_job(1);
    ASSERT_NE(job, nullptr);
    std::size_t ri = machine.tiers().find(TierKind::kRemote);
    ASSERT_LT(ri, machine.tiers().size());
    ASSERT_TRUE(machine.tiers().tier(ri).store(job->memcg(), 0));
    EXPECT_NE(machine.state_digest(), before);
}

TEST(ThreeTierMachine, EndToEndFillsBothDeepTiers)
{
    MachineConfig config = three_tier_config();
    config.compression = CompressionMode::kModeled;
    Machine machine(0, config, 3);
    machine.add_job(std::make_unique<Job>(1, profile_by_name("kv_cache"),
                                          7, 0));
    machine.add_job(std::make_unique<Job>(2, profile_by_name("logs"),
                                          8, 0));
    SimTime now = 0;
    for (; now < kHour; now += kMinute)
        machine.step(now);

    // Proactive reclaim demotes pages right as they cross the
    // threshold T, so in steady state nothing ages into the deep
    // remote band [2T, inf). Age a block of pages by hand -- the
    // backlog a reclaim outage would leave behind -- and the next
    // step must route it to the deepest matching tier.
    Job *job = machine.find_job(1);
    ASSERT_NE(job, nullptr);
    PageId aged = static_cast<PageId>(
        std::min<std::uint64_t>(job->memcg().num_pages(), 512));
    Memcg &aged_cg = job->memcg();
    for (PageId p = 0; p < aged; ++p) {
        if (!aged_cg.page_test(p, kPageInZswap) &&
            !aged_cg.page_test(p, kPageInFarTier)) {
            aged_cg.set_page_age(p, 60);
        }
    }
    for (; now < 2 * kHour; now += kMinute)
        machine.step(now);

    std::size_t ni = machine.tiers().find(TierKind::kNvm);
    std::size_t ri = machine.tiers().find(TierKind::kRemote);
    ASSERT_LT(ni, machine.tiers().size());
    ASSERT_LT(ri, machine.tiers().size());
    EXPECT_GT(machine.tiers().tier(ni).used_pages(), 0u);
    EXPECT_GT(machine.tiers().tier(ri).used_pages(), 0u);
    EXPECT_EQ(machine.tier_stored_pages(),
              machine.tiers().tier(ni).used_pages() +
                  machine.tiers().tier(ri).used_pages());
    EXPECT_EQ(machine.far_memory_pages(),
              machine.zswap_stored_pages() + machine.tier_stored_pages());

    // Explicit stacks export per-tier telemetry under tier.<label>.*.
    MetricsSnapshot snap = machine.metrics().snapshot();
    EXPECT_GT(snap.counters.at("tier.nvm.demotions"), 0u);
    EXPECT_GT(snap.counters.at("tier.remote.demotions"), 0u);
    EXPECT_GT(snap.gauges.at("tier.remote.stored_pages"), 0.0);

    machine.remove_job(1);
    machine.remove_job(2);
    EXPECT_EQ(machine.tier_stored_pages(), 0u);
}

TEST(ThreeTierMachine, CheckpointRoundTripTrajectoryEqual)
{
    MachineConfig config = three_tier_config();
    Machine a(0, config, 11);
    a.add_job(std::make_unique<Job>(1, profile_by_name("kv_cache"), 100,
                                    0));
    a.add_job(std::make_unique<Job>(2, profile_by_name("web_frontend"),
                                    101, 0));
    a.add_job(std::make_unique<Job>(3, profile_by_name("logs"), 102, 0));
    SimTime now = 0;
    for (int i = 0; i < 25; ++i, now += config.control_period)
        a.step(now);

    Serializer s;
    a.ckpt_save(s);
    Machine b(0, config, 11);
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d.at_end());
    EXPECT_EQ(a.state_digest(), b.state_digest());

    // Every tier's occupancy survived, not just the shallow ones.
    for (std::size_t i = 1; i < a.tiers().size(); ++i) {
        EXPECT_EQ(a.tiers().tier(i).used_pages(),
                  b.tiers().tier(i).used_pages())
            << "tier " << i;
    }

    for (int i = 0; i < 15; ++i, now += config.control_period) {
        a.step(now);
        b.step(now);
        ASSERT_EQ(a.state_digest(), b.state_digest())
            << "diverged " << i << " steps after restore";
    }
    EXPECT_EQ(a.metrics().snapshot().counters,
              b.metrics().snapshot().counters);
}

TEST(ThreeTierMachine, DonorFailureAtDepthThreeKillsOwningJob)
{
    MachineConfig config = three_tier_config();
    Machine machine(0, config, 7);
    machine.add_job(std::make_unique<Job>(1, profile_by_name("kv_cache"),
                                          9, 0));
    Job *job = machine.find_job(1);
    ASSERT_NE(job, nullptr);

    std::size_t ri = machine.tiers().find(TierKind::kRemote);
    ASSERT_EQ(ri, 2u);  // depth 3: DRAM -> zswap -> nvm -> remote
    RemoteTier *remote =
        static_cast<RemoteTier *>(&machine.tiers().tier(ri));
    for (PageId p = 0; p < 10; ++p)
        ASSERT_TRUE(remote->store(job->memcg(), p));
    ASSERT_EQ(remote->used_pages(), 10u);

    // Round-robin placement puts pages on donor 0; its failure loses
    // them and kills the owning job, which drops the survivors too.
    std::vector<JobId> victims = machine.fail_donor(0);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], 1u);
    EXPECT_EQ(machine.find_job(1), nullptr);
    EXPECT_EQ(remote->used_pages(), 0u);
    EXPECT_GE(remote->stats().pages_lost, 1u);
    EXPECT_EQ(remote->stats().donor_failures, 1u);

    // The machine stays consistent and steppable afterwards.
    machine.step(0);
    EXPECT_EQ(machine.tier_stored_pages(), 0u);
}

}  // namespace
}  // namespace sdfm
