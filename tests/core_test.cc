/**
 * @file
 * Tests for the public facade: fleet construction and stepping,
 * aggregate metrics, the TCO model, report extraction, and SLO
 * deployment.
 */

#include <gtest/gtest.h>

#include "core/far_memory_system.h"
#include "core/reports.h"

namespace sdfm {
namespace {

FleetConfig
tiny_fleet()
{
    FleetConfig config;
    config.num_clusters = 2;
    config.cluster.num_machines = 3;
    config.cluster.machine.dram_pages = 96ull * kMiB / kPageSize;
    config.cluster.machine.compression = CompressionMode::kModeled;
    config.cluster.mix = typical_fleet_mix();
    config.cluster.target_utilization = 0.7;
    config.seed = 7;
    return config;
}

TEST(FarMemorySystemTest, PopulateAndRun)
{
    FarMemorySystem fleet(tiny_fleet());
    fleet.populate();
    EXPECT_GT(fleet.num_jobs(), 4u);
    SimTime start = fleet.now();
    fleet.run(90 * kMinute);
    EXPECT_EQ(fleet.now(), start + 90 * kMinute);
    EXPECT_GT(fleet.fleet_cold_fraction(), 0.02);
    EXPECT_GT(fleet.fleet_coverage(), 0.0);
    EXPECT_LE(fleet.fleet_coverage(), 1.0);
}

TEST(FarMemorySystemTest, ClustersDiffer)
{
    FarMemorySystem fleet(tiny_fleet());
    fleet.populate();
    fleet.run(kHour);
    ASSERT_EQ(fleet.clusters().size(), 2u);
    // Mix jitter should give the clusters different cold profiles
    // (exact equality would indicate the jitter is not applied).
    EXPECT_NE(fleet.clusters()[0]->cold_memory_fraction(),
              fleet.clusters()[1]->cold_memory_fraction());
}

TEST(FarMemorySystemTest, MergedTraceCoversAllJobs)
{
    FarMemorySystem fleet(tiny_fleet());
    fleet.populate();
    fleet.run(30 * kMinute);
    TraceLog merged = fleet.merged_trace();
    EXPECT_GT(merged.size(), 0u);
    EXPECT_GE(merged.by_job().size(), fleet.num_jobs() / 2);
}

TEST(FarMemorySystemTest, DeploySloReachesEveryMachine)
{
    FarMemorySystem fleet(tiny_fleet());
    fleet.populate();
    SloConfig slo;
    slo.percentile_k = 77.0;
    fleet.deploy_slo(slo);
    for (auto &cluster : fleet.clusters())
        for (auto &machine : cluster->machines())
            EXPECT_DOUBLE_EQ(machine->agent().config().slo.percentile_k,
                             77.0);
}

TEST(FarMemorySystemTest, JobColdFractionsPopulated)
{
    FarMemorySystem fleet(tiny_fleet());
    fleet.populate();
    fleet.run(kHour);
    SampleSet fractions = fleet.job_cold_fractions();
    EXPECT_EQ(fractions.size(), fleet.num_jobs());
    EXPECT_GE(fractions.min(), 0.0);
    EXPECT_LE(fractions.max(), 1.0);
}

// ----------------------------------------------------------------- TCO

TEST(TcoModelTest, PaperHeadlineNumbers)
{
    // 20% coverage x 32% cold bound x 67% per-byte saving = 4.3%.
    TcoModel tco;
    tco.coverage = 0.20;
    tco.cold_fraction = 0.32;
    tco.compression_ratio = 3.0;
    EXPECT_NEAR(tco.per_byte_saving(), 0.667, 0.01);
    EXPECT_NEAR(tco.compressed_fraction(), 0.064, 1e-9);
    EXPECT_GT(tco.tco_savings(), 0.04);
    EXPECT_LT(tco.tco_savings(), 0.05);
}

TEST(TcoModelTest, NoSavingsAtRatioOne)
{
    TcoModel tco;
    tco.compression_ratio = 1.0;
    EXPECT_DOUBLE_EQ(tco.tco_savings(), 0.0);
}

// ------------------------------------------------------------- reports

struct FleetFixture : public ::testing::Test
{
    FleetFixture() : fleet(tiny_fleet())
    {
        fleet.populate();
        warmup_cutoff = fleet.now() + 90 * kMinute;
        fleet.run(3 * kHour);
    }
    FarMemorySystem fleet;
    /** Warm-up horizon excluded from steady-state SLI checks: the
     *  initial cold-set capture is a one-time transient. */
    SimTime warmup_cutoff = 0;
};

TEST_F(FleetFixture, PromotionRateSamplesUnderSlo)
{
    TraceLog trace = fleet.merged_trace();
    SampleSet rates = promotion_rate_samples(trace, warmup_cutoff);
    ASSERT_FALSE(rates.empty());
    // Figure 7: p98 below 0.2%/min of WSS (modest slack for the small
    // sample).
    EXPECT_LT(rates.percentile(98.0), 0.004);
}

TEST_F(FleetFixture, PerJobPromotionRatesUnderSlo)
{
    TraceLog trace = fleet.merged_trace();
    SampleSet rates = job_promotion_rate_samples(trace, warmup_cutoff, 2);
    ASSERT_FALSE(rates.empty());
    // Figure 7's actual metric: per-job aggregate rates; the tail
    // stays at the SLO scale.
    EXPECT_LT(rates.percentile(98.0), 0.004);
}

TEST(JobPromotionRateSamples, SkipsLeadingWindowsAndShortJobs)
{
    TraceLog log;
    // Job 1: 8 windows, first with a huge burst.
    for (int w = 0; w < 8; ++w) {
        TraceEntry entry;
        entry.job = 1;
        entry.timestamp = (w + 1) * kTraceWindow;
        entry.wss_pages = 1000;
        entry.sli.zswap_promotions_delta = w == 0 ? 100000 : 5;
        log.append(entry);
    }
    // Job 2: only 3 windows (shorter than the 6-window minimum).
    for (int w = 0; w < 3; ++w) {
        TraceEntry entry;
        entry.job = 2;
        entry.timestamp = (w + 1) * kTraceWindow;
        entry.wss_pages = 10;
        entry.sli.zswap_promotions_delta = 500;
        log.append(entry);
    }
    SampleSet with_skip = job_promotion_rate_samples(log, 0, 1);
    ASSERT_EQ(with_skip.size(), 1u);  // job 2 filtered out entirely
    // Job 1's burst window was skipped: rate reflects the steady 5.
    EXPECT_NEAR(with_skip.max(), 5.0 / 5.0 / 1000.0, 1e-9);
    SampleSet without_skip = job_promotion_rate_samples(log, 0, 0);
    EXPECT_GT(without_skip.max(), 100.0 * with_skip.max());
}

TEST_F(FleetFixture, CpuOverheadSamplesSmall)
{
    TraceLog trace = fleet.merged_trace();
    SampleSet compress = job_cpu_overhead_samples(trace, false, warmup_cutoff);
    SampleSet decompress = job_cpu_overhead_samples(trace, true, warmup_cutoff);
    ASSERT_FALSE(compress.empty());
    ASSERT_FALSE(decompress.empty());
    // Figure 8 scale: both far below 1% at the tail.
    EXPECT_LT(compress.percentile(98.0), 0.03);
    EXPECT_LT(decompress.percentile(98.0), 0.01);
    SampleSet machine = machine_cpu_overhead_samples(fleet, true);
    ASSERT_FALSE(machine.empty());
    EXPECT_LT(machine.percentile(50.0), 0.01);
}

TEST_F(FleetFixture, CompressionRatioNearPaper)
{
    SampleSet ratios = job_compression_ratio_samples(fleet);
    ASSERT_FALSE(ratios.empty());
    // Figure 9a: 2-6x band, median near 3x.
    EXPECT_GT(ratios.percentile(50.0), 2.0);
    EXPECT_LT(ratios.percentile(50.0), 4.5);
}

TEST_F(FleetFixture, DecompressLatencySingleDigitMicroseconds)
{
    SampleSet latencies = job_decompress_latency_samples(fleet);
    ASSERT_FALSE(latencies.empty());
    // Figure 9b: single-digit microseconds.
    EXPECT_GT(latencies.percentile(50.0), 3.0);
    EXPECT_LT(latencies.percentile(98.0), 12.0);
}

TEST_F(FleetFixture, IpcProxyNearUnity)
{
    SampleSet ipc = job_ipc_proxy_samples(fleet, 0.0, 1);
    ASSERT_FALSE(ipc.empty());
    // Without noise, far-memory stalls cost well under 1%.
    EXPECT_GT(ipc.percentile(2.0), 0.98);
    EXPECT_LE(ipc.max(), 1.0);
}

}  // namespace
}  // namespace sdfm
