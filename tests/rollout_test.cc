/**
 * @file
 * Tests for the staged canary rollout of autotuner configs
 * (autotune/rollout.h): the happy-path stage walk, guardrail-breach
 * rollback (with warmup re-entry on the rollback deployment), all
 * three config-push fault kinds (loss with bounded retry / stage
 * abort, stall with a frozen stage window, split brain with epoch
 * audit reconciliation), mid-rollout checkpoint/restore digest
 * continuation, and corrupt rollout-section rejection sparing the
 * live fleet.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "autotune/rollout.h"
#include "ckpt/checkpoint.h"
#include "core/far_memory_system.h"
#include "mem/memcg.h"
#include "node/machine.h"
#include "node/node_agent.h"
#include "workload/job_profile.h"

namespace sdfm {
namespace {

// ---------------------------------------------------------------------
// Unit-level harness: bare machines (never stepped) whose guardrail
// counters the tests drive directly through the metric registry.
// ---------------------------------------------------------------------

struct RolloutHarness
{
    static constexpr std::uint32_t kMachinesPerCluster = 4;

    std::vector<std::unique_ptr<Machine>> cluster0;
    std::vector<std::unique_ptr<Machine>> cluster1;
    ConfigRollout::MachineView view;

    RolloutHarness()
    {
        MachineConfig config;
        config.dram_pages = 4 * 1024;
        for (std::uint32_t m = 0; m < kMachinesPerCluster; ++m) {
            cluster0.push_back(
                std::make_unique<Machine>(m, config, 100 + m));
            cluster1.push_back(
                std::make_unique<Machine>(m, config, 200 + m));
        }
        view = {&cluster0, &cluster1};
    }

    /** Machines currently on @p epoch, as (cluster, machine) pairs. */
    std::vector<std::pair<std::size_t, std::size_t>>
    machines_on_epoch(std::uint64_t epoch) const
    {
        std::vector<std::pair<std::size_t, std::size_t>> hits;
        for (std::size_t c = 0; c < view.size(); ++c) {
            for (std::size_t m = 0; m < view[c]->size(); ++m) {
                if ((*view[c])[m]->agent().config_epoch() == epoch)
                    hits.emplace_back(c, m);
            }
        }
        return hits;
    }
};

RolloutParams
small_rollout_params()
{
    RolloutParams params;
    params.enabled = true;
    params.seed = 7;
    params.stage_fractions = {0.25, 1.0};  // 2-machine canary, then all
    params.baseline_periods = 2;
    params.observe_periods = 3;
    params.guardrails.counter_grace = 0;  // any breach event rolls back
    params.guardrails.counter_slack = 1.0;
    return params;
}

SloConfig
candidate_config()
{
    SloConfig slo;
    slo.percentile_k = 95.0;  // distinguishable from the default 98
    return slo;
}

/** Drive @p rollout for @p steps one-minute periods starting at
 *  @p now; returns the time after the last step. */
SimTime
run_steps(ConfigRollout &rollout, const ConfigRollout::MachineView &view,
          SimTime now, int steps)
{
    for (int i = 0; i < steps; ++i, now += kMinute)
        rollout.step(now, kMinute, view);
    return now;
}

TEST(ConfigRolloutTest, HappyPathWalksEveryStageToDeployed)
{
    RolloutHarness h;
    ConfigRollout rollout(small_rollout_params(), SloConfig{}, 1,
                          {4, 4});
    EXPECT_EQ(rollout.state(), RolloutState::kIdle);

    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));
    EXPECT_EQ(rollout.state(), RolloutState::kProposed);
    // A second proposal while one is in flight is refused.
    EXPECT_FALSE(rollout.propose(0, candidate_config(), h.view));

    // Two baseline periods, then the canary stage begins.
    SimTime now = run_steps(rollout, h.view, 0, 2);
    EXPECT_EQ(rollout.state(), RolloutState::kCanary);
    EXPECT_EQ(rollout.stats().pushes_delivered, 0u);

    // Delivery period: exactly the canary cohort (one machine per
    // cluster at 0.25 of four) switches to epoch 1.
    now = run_steps(rollout, h.view, now, 1);
    EXPECT_EQ(rollout.stats().pushes_delivered, 2u);
    EXPECT_EQ(h.machines_on_epoch(1).size(), 2u);
    rollout.check_invariants(h.view);

    // Three clean observation periods, then the final stage expands.
    now = run_steps(rollout, h.view, now, 3);
    EXPECT_EQ(rollout.state(), RolloutState::kExpanding);
    now = run_steps(rollout, h.view, now, 1);
    EXPECT_EQ(rollout.stats().pushes_delivered, 8u);
    EXPECT_EQ(h.machines_on_epoch(1).size(), 8u);

    // Final observation window, then the candidate is the config.
    now = run_steps(rollout, h.view, now, 3);
    EXPECT_EQ(rollout.state(), RolloutState::kDeployed);
    EXPECT_EQ(rollout.stats().deployments, 1u);
    EXPECT_EQ(rollout.stats().rollbacks, 0u);
    EXPECT_EQ(rollout.current_config().percentile_k, 95.0);
    // Every machine runs the candidate tunables.
    for (std::size_t c = 0; c < h.view.size(); ++c) {
        for (const auto &m : *h.view[c]) {
            EXPECT_EQ(m->agent().config().slo.percentile_k, 95.0);
        }
    }
    rollout.check_invariants(h.view);

    // The terminal state accepts the next campaign.
    EXPECT_TRUE(rollout.propose(now, SloConfig{}, h.view));
}

TEST(ConfigRolloutTest, GuardrailBreachRollsBackOnlyTheCohort)
{
    RolloutHarness h;
    ConfigRollout rollout(small_rollout_params(), SloConfig{}, 1,
                          {4, 4});
    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));

    // Baseline, then canary delivery, then the window opens.
    SimTime now = run_steps(rollout, h.view, 0, 3);
    ASSERT_EQ(rollout.state(), RolloutState::kCanary);
    auto canaries = h.machines_on_epoch(1);
    ASSERT_EQ(canaries.size(), 2u);

    // An SLO-breaker trip on a canary machine during the observation
    // window: with zero grace and a zero baseline rate, one event is
    // a breach.
    auto [c, m] = canaries.front();
    (*h.view[c])[m]->metrics().counter("agent.slo_breaker_trips").inc();
    now = run_steps(rollout, h.view, now, 1);
    EXPECT_EQ(rollout.state(), RolloutState::kRollingBack);
    EXPECT_EQ(rollout.stats().guardrail_breaches, 1u);

    // Rollback delivery, then one clean audit pass completes it.
    now = run_steps(rollout, h.view, now, 2);
    EXPECT_EQ(rollout.state(), RolloutState::kRolledBack);
    EXPECT_EQ(rollout.stats().rollbacks, 1u);
    // The committed config is still the original.
    EXPECT_EQ(rollout.current_config().percentile_k, 98.0);
    // Only the canary cohort was ever touched: it now runs the
    // rollback epoch (2) with the old tunables; everyone else never
    // left epoch 0.
    EXPECT_EQ(h.machines_on_epoch(2).size(), 2u);
    EXPECT_EQ(h.machines_on_epoch(0).size(), 6u);
    for (auto [rc, rm] : h.machines_on_epoch(2)) {
        EXPECT_EQ((*h.view[rc])[rm]->agent().config().slo.percentile_k,
                  98.0);
    }
    rollout.check_invariants(h.view);
}

TEST(ConfigRolloutTest, RollbackDeploymentReentersWarmup)
{
    // The conservative rollback posture at the agent level: zswap
    // off, threshold zero, and the S-second enablement delay anchored
    // at the deployment -- not at job start.
    NodeAgentConfig config;
    config.policy = FarMemoryPolicy::kStatic;
    config.static_threshold = 4;
    config.slo.enable_delay = 300;
    NodeAgent agent(config);

    Memcg cg(1, 1000, 42, ContentMix::typical(), 0);
    cg.mutable_cold_hist().add(0, 1000);
    agent.register_job(cg);
    std::vector<Memcg *> jobs = {&cg};

    // Past the initial warmup the static policy reclaims.
    agent.control(300, jobs, 1.0);
    ASSERT_EQ(cg.reclaim_threshold(), 4);
    ASSERT_TRUE(cg.zswap_enabled());

    // Conservative deployment (the rollback path): reclaim stops
    // immediately...
    agent.deploy_slo(300, config.slo, /*epoch=*/2,
                     /*conservative=*/true, jobs);
    EXPECT_EQ(cg.reclaim_threshold(), 0);
    EXPECT_FALSE(cg.zswap_enabled());
    EXPECT_EQ(agent.config_epoch(), 2u);

    // ... and stays off for a full S seconds from the deployment.
    agent.control(360, jobs, 1.0);
    EXPECT_EQ(cg.reclaim_threshold(), 0);
    agent.control(599, jobs, 1.0);
    EXPECT_EQ(cg.reclaim_threshold(), 0);
    agent.control(600, jobs, 1.0);
    EXPECT_EQ(cg.reclaim_threshold(), 4);
    EXPECT_TRUE(cg.zswap_enabled());
}

TEST(ConfigRolloutTest, PushLossRetriesWithBackoffThenDelivers)
{
    RolloutParams params = small_rollout_params();
    params.fault.enabled = true;
    // One delivery lost in the canary push period (time 120 is the
    // third step: two baseline periods precede it).
    params.fault.schedule.push_back(
        {120, {FaultKind::kConfigPushLoss, 1, 0}});

    RolloutHarness h;
    ConfigRollout rollout(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));

    SimTime now = run_steps(rollout, h.view, 0, 3);
    EXPECT_EQ(rollout.stats().pushes_lost, 1u);
    EXPECT_EQ(rollout.stats().pushes_delivered, 1u);
    EXPECT_EQ(h.machines_on_epoch(1).size(), 1u);

    // The retry (backoff of one period) lands the second canary; the
    // campaign then proceeds to full deployment.
    now = run_steps(rollout, h.view, now, 1);
    EXPECT_EQ(h.machines_on_epoch(1).size(), 2u);
    run_steps(rollout, h.view, now, 10);
    EXPECT_EQ(rollout.state(), RolloutState::kDeployed);
    EXPECT_EQ(rollout.stats().pushes_aborted, 0u);
    EXPECT_EQ(rollout.stats().pushes_delivered, 8u);
}

TEST(ConfigRolloutTest, PushRetryExhaustionAbortsStageAndRollsBack)
{
    RolloutParams params = small_rollout_params();
    params.max_push_retries = 0;  // the first loss aborts the push
    params.fault.enabled = true;
    params.fault.schedule.push_back(
        {120, {FaultKind::kConfigPushLoss, 1, 0}});

    RolloutHarness h;
    ConfigRollout rollout(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));

    // Canary delivery period: the first push is lost and aborted
    // (retry budget zero), which cancels the campaign; the second
    // canary had already switched and must be rolled back.
    SimTime now = run_steps(rollout, h.view, 0, 3);
    EXPECT_EQ(rollout.state(), RolloutState::kRollingBack);
    EXPECT_EQ(rollout.stats().pushes_aborted, 1u);

    run_steps(rollout, h.view, now, 3);
    EXPECT_EQ(rollout.state(), RolloutState::kRolledBack);
    EXPECT_EQ(rollout.stats().rollbacks, 1u);
    // One machine on the rollback epoch, seven never touched.
    EXPECT_EQ(h.machines_on_epoch(2).size(), 1u);
    EXPECT_EQ(h.machines_on_epoch(0).size(), 7u);
    EXPECT_EQ(rollout.current_config().percentile_k, 98.0);
}

TEST(ConfigRolloutTest, PushStallFreezesTheStageWindow)
{
    RolloutParams params = small_rollout_params();
    params.fault.enabled = true;
    // A stall landing on the canary delivery period, covering it and
    // the next two periods.
    params.fault.schedule.push_back(
        {120, {FaultKind::kConfigPushStall, 1, 2 * kMinute}});

    RolloutHarness h;
    ConfigRollout rollout(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));

    // Three frozen periods: no deliveries, no window progress.
    SimTime now = run_steps(rollout, h.view, 0, 5);
    EXPECT_EQ(rollout.stats().stall_periods, 3u);
    EXPECT_EQ(rollout.stats().pushes_delivered, 0u);
    EXPECT_EQ(rollout.state(), RolloutState::kCanary);

    // The push plane recovers and the campaign completes normally.
    run_steps(rollout, h.view, now, 12);
    EXPECT_EQ(rollout.state(), RolloutState::kDeployed);
    EXPECT_EQ(rollout.stats().pushes_delivered, 8u);
}

TEST(ConfigRolloutTest, SplitBrainIsAuditedAndReconciled)
{
    RolloutParams params = small_rollout_params();
    params.fault.enabled = true;
    params.fault.schedule.push_back(
        {120, {FaultKind::kConfigSplitBrain, 1, 0}});

    RolloutHarness h;
    ConfigRollout rollout(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));

    // Canary delivery period: one push is acknowledged but never
    // applied -- the rollout believes two machines switched, but only
    // one did.
    SimTime now = run_steps(rollout, h.view, 0, 3);
    EXPECT_EQ(rollout.stats().pushes_delivered, 1u);
    EXPECT_EQ(h.machines_on_epoch(1).size(), 1u);
    EXPECT_EQ(rollout.stats().split_brains, 0u);

    // The next period's config-epoch audit detects the divergence and
    // the reconcile redelivery lands the same period.
    now = run_steps(rollout, h.view, now, 1);
    EXPECT_EQ(rollout.stats().split_brains, 1u);
    EXPECT_EQ(h.machines_on_epoch(1).size(), 2u);

    run_steps(rollout, h.view, now, 11);
    EXPECT_EQ(rollout.state(), RolloutState::kDeployed);
    EXPECT_EQ(h.machines_on_epoch(1).size(), 8u);
    rollout.check_invariants(h.view);
}

TEST(ConfigRolloutTest, LostSplitBrainRedeliveryClosesTheWindow)
{
    RolloutParams params = small_rollout_params();
    params.fault.enabled = true;
    // The canary delivery period leaves one machine split-brained;
    // the audit's reconcile redelivery next period is itself lost.
    params.fault.schedule.push_back(
        {120, {FaultKind::kConfigSplitBrain, 1, 0}});
    params.fault.schedule.push_back(
        {180, {FaultKind::kConfigPushLoss, 1, 0}});

    RolloutHarness h;
    ConfigRollout rollout(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));

    // Baseline, then the canary delivery (one split brain), and the
    // observation window opens over the two believed-switched
    // machines.
    SimTime now = run_steps(rollout, h.view, 0, 3);
    ASSERT_EQ(rollout.state(), RolloutState::kCanary);

    // The audit enqueues the reconcile redelivery and the redelivery
    // is lost: the window must close (its counters covered a machine
    // on the wrong config) rather than stay open around the in-flight
    // retry -- the state that used to trip 'no in-flight pushes
    // inside an open window'.
    now = run_steps(rollout, h.view, now, 1);
    EXPECT_EQ(rollout.stats().split_brains, 1u);
    EXPECT_EQ(rollout.stats().pushes_lost, 1u);
    rollout.check_invariants(h.view);

    // A kill here must be recoverable: the mid-backoff state
    // checkpoints, restores, and resolves to the same digest.
    Serializer s;
    rollout.ckpt_save(s);
    Deserializer d(s.bytes());
    ConfigRollout restored(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(restored.ckpt_load(d));
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(restored.ckpt_resolve(h.view));
    EXPECT_EQ(restored.state_digest(h.view),
              rollout.state_digest(h.view));

    // The retried redelivery lands and the campaign completes.
    run_steps(rollout, h.view, now, 14);
    EXPECT_EQ(rollout.state(), RolloutState::kDeployed);
    EXPECT_EQ(h.machines_on_epoch(1).size(), 8u);
    rollout.check_invariants(h.view);
}

TEST(ConfigRolloutTest, StalledBaselineDoesNotInflateGuardrailRates)
{
    RolloutParams params = small_rollout_params();
    params.fault.enabled = true;
    // Two stall periods inside the baseline window: machine counters
    // keep accumulating while baseline_elapsed_ is frozen.
    params.fault.schedule.push_back(
        {60, {FaultKind::kConfigPushStall, 1, kMinute}});

    RolloutHarness h;
    ConfigRollout rollout(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));

    // One baseline period, two stall periods, one baseline period:
    // the baseline counters span four real periods. One eviction per
    // machine over that span is a true 0.25 events/machine-period.
    SimTime now = run_steps(rollout, h.view, 0, 3);
    ASSERT_EQ(rollout.stats().stall_periods, 2u);
    for (auto *cluster : h.view)
        for (const auto &m : *cluster)
            m->metrics().counter("machine.evictions").inc();
    now = run_steps(rollout, h.view, now, 1);
    ASSERT_EQ(rollout.state(), RolloutState::kCanary);

    // Canary delivery; the window opens over the two canaries.
    now = run_steps(rollout, h.view, now, 1);
    auto canaries = h.machines_on_epoch(1);
    ASSERT_EQ(canaries.size(), 2u);

    // One eviction on a canary in the first observed period. Against
    // the true baseline the allowance is 0.25 x 2 machine-periods =
    // 0.5, a breach; a stall-inflated baseline (deltas divided by the
    // two counted periods only) would have let it slip through.
    auto [c, m] = canaries.front();
    (*h.view[c])[m]->metrics().counter("machine.evictions").inc();
    run_steps(rollout, h.view, now, 1);
    EXPECT_EQ(rollout.state(), RolloutState::kRollingBack);
    EXPECT_EQ(rollout.stats().guardrail_breaches, 1u);
}

TEST(ConfigRolloutTest, CkptRoundTripPreservesStateAndDigest)
{
    RolloutHarness h;
    RolloutParams params = small_rollout_params();
    ConfigRollout rollout(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));
    run_steps(rollout, h.view, 0, 4);  // mid-campaign: canary window

    Serializer s;
    rollout.ckpt_save(s);
    Deserializer d(s.bytes());
    ConfigRollout restored(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(restored.ckpt_load(d));
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d.at_end());
    ASSERT_TRUE(restored.ckpt_resolve(h.view));
    EXPECT_EQ(restored.state(), rollout.state());
    EXPECT_EQ(restored.state_digest(h.view),
              rollout.state_digest(h.view));
}

TEST(ConfigRolloutTest, CkptLoadRejectsCorruptPayloads)
{
    RolloutHarness h;
    RolloutParams params = small_rollout_params();
    ConfigRollout rollout(params, SloConfig{}, 1, {4, 4});
    ASSERT_TRUE(rollout.propose(0, candidate_config(), h.view));
    run_steps(rollout, h.view, 0, 4);

    Serializer s;
    rollout.ckpt_save(s);

    {  // out-of-range state enum
        std::vector<std::uint8_t> bytes = s.bytes();
        bytes[0] = 99;
        Deserializer d(bytes);
        ConfigRollout victim(params, SloConfig{}, 1, {4, 4});
        EXPECT_FALSE(victim.ckpt_load(d));
    }
    {  // truncated payload
        std::vector<std::uint8_t> bytes = s.bytes();
        bytes.resize(bytes.size() / 2);
        Deserializer d(bytes);
        ConfigRollout victim(params, SloConfig{}, 1, {4, 4});
        EXPECT_FALSE(victim.ckpt_load(d) && d.ok() && d.at_end());
    }
    {  // topology mismatch: restored into a smaller fleet
        Deserializer d(s.bytes());
        ConfigRollout victim(params, SloConfig{}, 1, {2, 2});
        EXPECT_FALSE(victim.ckpt_load(d));
    }
    {   // parseable but incoherent: the saved campaign has an open
        // observation window (4 steps in), and flipping the state
        // byte to a terminal kDeployed yields a state machine the
        // runtime can never produce -- release builds must reject it
        // too, not just SDFM_CHECK_INVARIANTS ones.
        std::vector<std::uint8_t> bytes = s.bytes();
        bytes[0] = static_cast<std::uint8_t>(RolloutState::kDeployed);
        Deserializer d(bytes);
        ConfigRollout victim(params, SloConfig{}, 1, {4, 4});
        EXPECT_FALSE(victim.ckpt_load(d));
    }
}

// ---------------------------------------------------------------------
// Fleet-level integration: the rollout riding FarMemorySystem's step,
// digest, telemetry, and checkpoint planes.
// ---------------------------------------------------------------------

FleetConfig
rollout_fleet_config()
{
    FleetConfig config;
    config.num_clusters = 2;
    config.seed = 33;
    config.serial_step = true;
    config.cluster.num_machines = 4;
    config.cluster.machine.dram_pages = 16 * 1024;
    config.cluster.machine.slo_breaker_enabled = true;
    config.cluster.mix = typical_fleet_mix();
    config.rollout.enabled = true;
    config.rollout.seed = 11;
    config.rollout.stage_fractions = {0.25, 1.0};
    config.rollout.baseline_periods = 3;
    config.rollout.observe_periods = 4;
    // Exercise the push fault plane across the checkpoint boundary.
    config.rollout.fault.enabled = true;
    config.rollout.fault.config_push_loss_prob = 0.2;
    config.rollout.fault.config_split_brain_prob = 0.2;
    return config;
}

/** Read a whole file into bytes. */
std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

/** RAII temp checkpoint path (removed on scope exit). */
struct TempCkpt
{
    explicit TempCkpt(const char *name) : path(name) {}
    ~TempCkpt() { std::remove(path.c_str()); }
    std::string path;
};

TEST(RolloutFleetTest, MidRolloutCheckpointContinuesTheDigestTrajectory)
{
    TempCkpt ckpt("rollout_ckpt_traj.ckpt");
    FleetConfig config = rollout_fleet_config();

    FarMemorySystem reference(config);
    reference.populate();
    for (int i = 0; i < 4; ++i)
        reference.step();
    ASSERT_TRUE(reference.propose_slo(candidate_config()));
    // Into the canary stage (baseline + delivery + some observation).
    for (int i = 0; i < 6; ++i)
        reference.step();
    ASSERT_NE(reference.rollout()->state(), RolloutState::kIdle);
    ASSERT_EQ(reference.checkpoint(ckpt.path), CkptStatus::kOk);

    FarMemorySystem resumed(config);
    ASSERT_EQ(resumed.restore(ckpt.path), CkptStatus::kOk);
    EXPECT_EQ(resumed.state_digest(), reference.state_digest());
    EXPECT_EQ(resumed.rollout()->state(), reference.rollout()->state());

    // The interrupted and uninterrupted runs walk the identical
    // trajectory through the rest of the campaign.
    for (int i = 0; i < 20; ++i) {
        reference.step();
        resumed.step();
        ASSERT_EQ(resumed.state_digest(), reference.state_digest())
            << "diverged " << i << " steps after restore";
    }
    EXPECT_EQ(resumed.rollout()->state(), reference.rollout()->state());
}

TEST(RolloutFleetTest, CorruptRolloutSectionSparesTheLiveFleet)
{
    TempCkpt good("rollout_ckpt_good.ckpt");
    TempCkpt bad("rollout_ckpt_bad.ckpt");
    FleetConfig config = rollout_fleet_config();

    FarMemorySystem fleet(config);
    fleet.populate();
    for (int i = 0; i < 4; ++i)
        fleet.step();
    ASSERT_TRUE(fleet.propose_slo(candidate_config()));
    for (int i = 0; i < 6; ++i)
        fleet.step();
    ASSERT_EQ(fleet.checkpoint(good.path), CkptStatus::kOk);

    // Rebuild the container with a garbage rollout section (the CRC
    // is recomputed, so rejection must come from payload validation,
    // not the checksum).
    {
        CkptReader reader;
        ASSERT_EQ(reader.read_file(good.path), CkptStatus::kOk);
        CkptWriter writer;
        for (const CkptSection &section : reader.sections()) {
            if (section.name == "rollout")
                writer.add_section(section.name, {0xDE, 0xAD, 0xBE});
            else
                writer.add_section(section.name, section.payload);
        }
        ASSERT_EQ(writer.write_file(bad.path), CkptStatus::kOk);
    }
    std::uint64_t before = fleet.state_digest();
    EXPECT_EQ(fleet.restore(bad.path), CkptStatus::kCorruptPayload);
    EXPECT_EQ(fleet.state_digest(), before);

    // A missing rollout section is equally fatal...
    {
        CkptReader reader;
        ASSERT_EQ(reader.read_file(good.path), CkptStatus::kOk);
        CkptWriter writer;
        for (const CkptSection &section : reader.sections()) {
            if (section.name != "rollout")
                writer.add_section(section.name, section.payload);
        }
        ASSERT_EQ(writer.write_file(bad.path), CkptStatus::kOk);
    }
    EXPECT_EQ(fleet.restore(bad.path), CkptStatus::kCorruptPayload);
    EXPECT_EQ(fleet.state_digest(), before);

    // ... and a flipped byte anywhere in the file still trips the
    // section CRC.
    {
        std::vector<std::uint8_t> bytes = slurp(good.path);
        bytes[bytes.size() - 9] ^= 0x40;
        std::ofstream out(bad.path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_NE(fleet.restore(bad.path), CkptStatus::kOk);
    EXPECT_EQ(fleet.state_digest(), before);

    // The intact checkpoint still restores.
    EXPECT_EQ(fleet.restore(good.path), CkptStatus::kOk);
}

TEST(RolloutFleetTest, DisabledRolloutLeavesTrajectoriesUntouched)
{
    // A fleet with the rollout plane disabled must be bit-identical
    // to one that predates it: same digests, no rollout.* metrics.
    FleetConfig config = rollout_fleet_config();
    config.rollout.enabled = false;
    FarMemorySystem fleet(config);
    fleet.populate();
    EXPECT_EQ(fleet.rollout(), nullptr);
    EXPECT_FALSE(fleet.propose_slo(candidate_config()));
    for (int i = 0; i < 5; ++i)
        fleet.step();
    MetricsSnapshot snap = fleet.fleet_telemetry();
    EXPECT_EQ(snap.counters.find("rollout.pushes_delivered"),
              snap.counters.end());
    FleetFaultReport report = fleet.fault_report();
    EXPECT_EQ(report.rollout_pushes_delivered, 0u);
    EXPECT_EQ(report.rollout_rollbacks, 0u);
}

}  // namespace
}  // namespace sdfm
