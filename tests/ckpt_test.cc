/**
 * @file
 * Tests for crash-consistent checkpoint/restore: the container format
 * (framing, CRCs, versioning), per-subsystem save/load round trips
 * compared by state digest or by subsequent behavior, the whole-fleet
 * checkpoint-at-k / restore / run-to-N trajectory guarantee, and every
 * rejection path (truncation, CRC flip, bad magic, bad version,
 * config mismatch, corrupt payload) -- each proving the live fleet is
 * left untouched by a failed restore.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "autotune/gp_bandit.h"
#include "ckpt/checkpoint.h"
#include "cluster/cluster.h"
#include "core/far_memory_system.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "mem/memcg.h"
#include "node/machine.h"
#include "node/threshold_controller.h"
#include "telemetry/registry.h"
#include "util/rng.h"
#include "workload/job.h"
#include "workload/job_profile.h"
#include "workload/trace.h"

namespace sdfm {
namespace {

// ---------------------------------------------------------------------
// RNG streams (satellite: every stream fully snapshottable)
// ---------------------------------------------------------------------

TEST(RngCkpt, RestoredStreamProducesIdenticalSequence)
{
    Rng original(12345);
    // Burn a mixed prefix so the snapshot is mid-stream, not at seed
    // state, and includes the gaussian spare-value cache if any.
    for (int i = 0; i < 100; ++i) {
        original.next_u64();
        original.next_double();
        original.next_gaussian();
        original.next_below(1000);
    }

    Serializer s;
    s.put_rng(original);
    Rng restored(999);  // different seed: every word must be overwritten
    Deserializer d(s.bytes());
    d.get_rng(restored);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d.at_end());

    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(original.next_u64(), restored.next_u64());
        EXPECT_EQ(original.next_double(), restored.next_double());
        EXPECT_EQ(original.next_gaussian(), restored.next_gaussian());
        EXPECT_EQ(original.next_below(77), restored.next_below(77));
        EXPECT_EQ(original.next_bool(0.3), restored.next_bool(0.3));
    }
}

TEST(RngCkpt, AllZeroStateIsRejected)
{
    Serializer s;
    for (int i = 0; i < 4; ++i)
        s.put_u64(0);
    Rng rng(1);
    Deserializer d(s.bytes());
    d.get_rng(rng);
    EXPECT_FALSE(d.ok());
}

// ---------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------

TEST(CkptContainer, RoundTripsSections)
{
    CkptWriter writer;
    writer.add_section("zebra", {1, 2, 3});
    writer.add_section("alpha", {9});
    writer.add_section("mid", {});
    std::vector<std::uint8_t> bytes = writer.encode();

    CkptReader reader;
    ASSERT_EQ(reader.parse(bytes), CkptStatus::kOk);
    ASSERT_EQ(reader.sections().size(), 3u);
    // Sections come back in ascending name order.
    EXPECT_EQ(reader.sections()[0].name, "alpha");
    EXPECT_EQ(reader.sections()[1].name, "mid");
    EXPECT_EQ(reader.sections()[2].name, "zebra");
    ASSERT_NE(reader.section("zebra"), nullptr);
    EXPECT_EQ(*reader.section("zebra"),
              (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_EQ(reader.section("absent"), nullptr);
}

TEST(CkptContainer, RejectsTamperedBytes)
{
    CkptWriter writer;
    writer.add_section("data", {10, 20, 30, 40});
    std::vector<std::uint8_t> good = writer.encode();

    {  // truncation anywhere in the tail
        for (std::size_t cut = 1; cut <= 6; ++cut) {
            std::vector<std::uint8_t> bad(good.begin(),
                                          good.end() - static_cast<long>(cut));
            CkptReader reader;
            EXPECT_EQ(reader.parse(bad), CkptStatus::kTruncated);
        }
    }
    {  // payload flip -> CRC mismatch
        std::vector<std::uint8_t> bad = good;
        bad[bad.size() - 6] ^= 0x01;  // inside payload, before the CRC
        CkptReader reader;
        EXPECT_EQ(reader.parse(bad), CkptStatus::kCrcMismatch);
    }
    {  // magic flip
        std::vector<std::uint8_t> bad = good;
        bad[0] ^= 0xFF;
        CkptReader reader;
        EXPECT_EQ(reader.parse(bad), CkptStatus::kBadMagic);
    }
    {  // unknown version (u32 at offset 8)
        std::vector<std::uint8_t> bad = good;
        bad[8] ^= 0x02;
        CkptReader reader;
        EXPECT_EQ(reader.parse(bad), CkptStatus::kBadVersion);
    }
}

// ---------------------------------------------------------------------
// Subsystem round trips
// ---------------------------------------------------------------------

TEST(SubsystemCkpt, CircuitBreakerRoundTrip)
{
    CircuitBreakerParams params;
    params.failure_threshold = 2;
    params.open_periods = 3;
    CircuitBreaker a(params);
    a.record_failure();
    a.record_failure();  // trips open
    a.tick();
    a.record_success();

    Serializer s;
    a.ckpt_save(s);
    CircuitBreaker b(params);
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.at_end());

    EXPECT_EQ(a.state(), b.state());
    EXPECT_EQ(a.stats().opens, b.stats().opens);
    EXPECT_EQ(a.stats().reopens, b.stats().reopens);
    EXPECT_EQ(a.stats().closes, b.stats().closes);
    // Behavioral equality from here on.
    for (int i = 0; i < 12; ++i) {
        EXPECT_EQ(a.allow(), b.allow());
        EXPECT_EQ(a.trial_budget(), b.trial_budget());
        a.tick();
        b.tick();
        EXPECT_EQ(a.state(), b.state());
    }
}

TEST(SubsystemCkpt, FaultInjectorRoundTrip)
{
    FaultConfig config;
    config.enabled = true;
    config.donor_failure_prob = 0.3;
    config.zswap_corruption_prob = 0.4;
    config.agent_crash_prob = 0.1;
    config.schedule.push_back({5 * kMinute, {FaultKind::kRemoteDegrade,
                                             1, 2 * kMinute}});

    FaultInjector a(config, 42);
    SimTime now = 0;
    for (int i = 0; i < 10; ++i, now += kMinute)
        a.step(now, now + kMinute);

    Serializer s;
    a.ckpt_save(s);
    FaultInjector b(config, 42);
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.at_end());

    for (int i = 0; i < 30; ++i, now += kMinute) {
        std::vector<FaultEvent> ea = a.step(now, now + kMinute);
        std::vector<FaultEvent> eb = b.step(now, now + kMinute);
        ASSERT_EQ(ea.size(), eb.size());
        for (std::size_t k = 0; k < ea.size(); ++k) {
            EXPECT_EQ(ea[k].kind, eb[k].kind);
            EXPECT_EQ(ea[k].magnitude, eb[k].magnitude);
            EXPECT_EQ(ea[k].duration, eb[k].duration);
        }
        EXPECT_EQ(a.target_rng().next_u64(), b.target_rng().next_u64());
    }
    EXPECT_EQ(a.stats().injected_total, b.stats().injected_total);
}

TEST(SubsystemCkpt, ThresholdControllerRoundTrip)
{
    SloConfig slo;
    slo.enable_delay = 2 * kMinute;
    slo.history_window = 10;
    ThresholdController a(slo, 0);
    Rng rng(3);
    SimTime now = kMinute;
    auto feed = [&](ThresholdController &c) {
        AgeHistogram delta;
        delta.add(static_cast<AgeBucket>(rng.next_below(8)),
                  rng.next_below(50));
        return c.update(now, delta, 1000, 1.0);
    };
    for (int i = 0; i < 7; ++i, now += kMinute) {
        feed(a);
        rng = Rng(3 + static_cast<std::uint64_t>(i));  // deterministic refill
    }

    Serializer s;
    a.ckpt_save(s);
    ThresholdController b(slo, 123);  // wrong anchor: must be overwritten
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.at_end());

    EXPECT_EQ(a.current_threshold(), b.current_threshold());
    EXPECT_EQ(a.job_start(), b.job_start());
    for (int i = 0; i < 10; ++i, now += kMinute) {
        Rng ra(77 + static_cast<std::uint64_t>(i));
        AgeHistogram delta;
        delta.add(static_cast<AgeBucket>(ra.next_below(8)),
                  ra.next_below(50));
        EXPECT_EQ(a.update(now, delta, 1000, 1.0),
                  b.update(now, delta, 1000, 1.0));
    }
}

TEST(SubsystemCkpt, MemcgRoundTripDigestEqual)
{
    Memcg a(7, 500, 42, ContentMix::typical(), 31);
    a.mutable_cold_hist().add(0, 300);
    a.mutable_cold_hist().add(5, 200);
    a.stats().zswap_promotions = 17;
    a.stats().app_cycles = 1.5e9;

    Serializer s;
    a.ckpt_save(s);
    // Restore into the cheapest structurally valid cgroup, the way
    // Job::ckpt_restore does.
    Memcg b(0, 1, 0, ContentMix::typical(), 0);
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.at_end());
    EXPECT_EQ(a.state_digest(), b.state_digest());
    EXPECT_EQ(b.id(), 7u);
    EXPECT_EQ(b.num_pages(), 500u);
    EXPECT_EQ(b.stats().zswap_promotions, 17u);
}

TEST(SubsystemCkpt, TraceLogRoundTripBitExact)
{
    TraceLog a;
    for (int i = 0; i < 5; ++i) {
        TraceEntry e;
        e.job = static_cast<JobId>(100 + i);
        e.timestamp = i * 5 * kMinute;
        e.wss_pages = 1000u + static_cast<std::uint64_t>(i);
        e.promo_delta.add(3, 7);
        e.cold_hist.add(1, 9);
        e.sli.app_cycles_delta = 0.1 + static_cast<double>(i) / 3.0;
        e.sli.compress_cycles_delta = 1e9 / 7.0;
        a.append(e);
    }

    Serializer s;
    a.ckpt_save(s);
    TraceLog b;
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.at_end());
    ASSERT_EQ(a.entries().size(), b.entries().size());
    for (std::size_t i = 0; i < a.entries().size(); ++i)
        EXPECT_EQ(a.entries()[i], b.entries()[i]);
}

TEST(SubsystemCkpt, MetricRegistryRoundTrip)
{
    MetricRegistry a;
    a.counter("x.count").inc(41);
    a.gauge("x.level").set(2.5);
    a.histogram("x.hist", {1.0, 2.0, 4.0}).observe(1.5);
    a.histogram("x.hist", {1.0, 2.0, 4.0}).observe(9.0);

    Serializer s;
    a.ckpt_save(s);
    // The restored registry starts with only a subset registered:
    // load must set the existing slot and lazily create the rest.
    MetricRegistry b;
    b.counter("x.count").inc(5);  // stale value: must be overwritten
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.at_end());

    MetricsSnapshot sa = a.snapshot();
    MetricsSnapshot sb = b.snapshot();
    EXPECT_EQ(sa.counters, sb.counters);
    EXPECT_EQ(sa.gauges, sb.gauges);
    ASSERT_EQ(sb.histograms.count("x.hist"), 1u);
    EXPECT_EQ(sa.histograms.at("x.hist").counts,
              sb.histograms.at("x.hist").counts);

    // Histogram bounds disagreement is a typed rejection, not an
    // assert: registry with conflicting bounds already registered.
    MetricRegistry c;
    c.histogram("x.hist", {10.0, 20.0});
    Deserializer d2(s.bytes());
    EXPECT_FALSE(c.ckpt_load(d2));
}

TEST(SubsystemCkpt, GpBanditRoundTripSuggestsIdentically)
{
    BanditConfig config;
    config.candidates = 32;
    config.local_candidates = 8;
    GpBandit a(config, 0.5, 9);
    Rng rng(4);
    for (int i = 0; i < 6; ++i) {
        Vector x = {rng.next_double(), rng.next_double()};
        a.add_observation(x, rng.next_double(), rng.next_double());
    }
    a.suggest();  // advance the candidate RNG off its seed state

    Serializer s;
    a.ckpt_save(s);
    GpBandit b(config, 0.5, 9);
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.at_end());

    ASSERT_EQ(a.observations().size(), b.observations().size());
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(a.suggest(), b.suggest());
}

TEST(SubsystemCkpt, JobRoundTripDigestEqual)
{
    FleetMix mix = typical_fleet_mix();
    MachineConfig config;
    config.dram_pages = 16 * 1024;
    Machine machine(0, config, 11);
    for (std::size_t i = 0; i < 3; ++i) {
        machine.add_job(std::make_unique<Job>(
            static_cast<JobId>(i + 1),
            mix.profiles[i % mix.profiles.size()], 100 + i, 0));
    }
    SimTime now = 0;
    for (int i = 0; i < 25; ++i, now += config.control_period)
        machine.step(now);

    // Round-trip each job through the restore path used by
    // Machine::ckpt_load.
    for (const auto &job : machine.jobs()) {
        Serializer s;
        job->ckpt_save(s);
        Deserializer d(s.bytes());
        std::unique_ptr<Job> copy = Job::ckpt_restore(d);
        ASSERT_NE(copy, nullptr);
        ASSERT_TRUE(d.at_end());
        EXPECT_EQ(copy->id(), job->id());
        EXPECT_EQ(copy->memcg().state_digest(),
                  job->memcg().state_digest());
    }
}

TEST(SubsystemCkpt, MachineRoundTripTrajectoryEqual)
{
    FleetMix mix = typical_fleet_mix();
    MachineConfig config;
    config.dram_pages = 16 * 1024;
    config.nvm.capacity_pages = 1 << 18;  // exercise the NVM tier
    config.tier_breaker_enabled = true;
    config.slo_breaker_enabled = true;
    Machine a(0, config, 11);
    for (std::size_t i = 0; i < 3; ++i) {
        a.add_job(std::make_unique<Job>(
            static_cast<JobId>(i + 1),
            mix.profiles[i % mix.profiles.size()], 100 + i, 0));
    }
    SimTime now = 0;
    for (int i = 0; i < 25; ++i, now += config.control_period)
        a.step(now);

    Serializer s;
    a.ckpt_save(s);
    Machine b(0, config, 11);
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d.at_end());
    EXPECT_EQ(a.state_digest(), b.state_digest());

    // The restored machine must continue the original's trajectory
    // bit-identically, including the metrics plane.
    for (int i = 0; i < 15; ++i, now += config.control_period) {
        a.step(now);
        b.step(now);
        ASSERT_EQ(a.state_digest(), b.state_digest())
            << "diverged " << i << " steps after restore";
    }
    EXPECT_EQ(a.metrics().snapshot().counters,
              b.metrics().snapshot().counters);
}

TEST(SubsystemCkpt, ClusterRoundTripTrajectoryEqual)
{
    ClusterConfig config;
    config.num_machines = 3;
    config.machine.dram_pages = 16 * 1024;
    config.machine.remote.capacity_pages = 1 << 20;
    config.machine.tier_breaker_enabled = true;
    config.machine.fault.enabled = true;
    config.machine.fault.donor_failure_prob = 0.05;
    config.machine.fault.zswap_corruption_prob = 0.2;
    config.mix = typical_fleet_mix();
    Cluster a(0, config, 5);
    a.populate(0);
    SimTime now = 0;
    for (int i = 0; i < 20; ++i, now += config.machine.control_period)
        a.step(now);

    Serializer s;
    a.ckpt_save(s);
    Cluster b(0, config, 5);
    Deserializer d(s.bytes());
    ASSERT_TRUE(b.ckpt_load(d));
    ASSERT_TRUE(d.at_end());
    EXPECT_EQ(a.state_digest(), b.state_digest());

    for (int i = 0; i < 15; ++i, now += config.machine.control_period) {
        a.step(now);
        b.step(now);
        ASSERT_EQ(a.state_digest(), b.state_digest())
            << "diverged " << i << " steps after restore";
    }
}

// ---------------------------------------------------------------------
// Whole-fleet checkpoint/restore
// ---------------------------------------------------------------------

FleetConfig
small_fleet_config()
{
    FleetConfig config;
    config.num_clusters = 2;
    config.seed = 21;
    config.serial_step = true;  // keep the tests single-threaded
    config.cluster.num_machines = 3;
    config.cluster.machine.dram_pages = 16 * 1024;
    config.cluster.machine.remote.capacity_pages = 1 << 20;
    config.cluster.machine.tier_breaker_enabled = true;
    config.cluster.machine.slo_breaker_enabled = true;
    config.cluster.machine.fault.enabled = true;
    config.cluster.machine.fault.donor_failure_prob = 0.05;
    config.cluster.machine.fault.zswap_corruption_prob = 0.2;
    config.cluster.machine.fault.agent_crash_prob = 0.02;
    config.cluster.mix = typical_fleet_mix();
    return config;
}

/** RAII temp checkpoint path (removed on scope exit). */
struct TempCkpt
{
    explicit TempCkpt(const char *name) : path(name) {}
    ~TempCkpt() { std::remove(path.c_str()); }
    std::string path;
};

TEST(FleetCkpt, RestoreAtKReproducesUninterruptedTrajectory)
{
    TempCkpt ckpt("fleet_ckpt_traj.ckpt");
    FleetConfig config = small_fleet_config();

    FarMemorySystem reference(config);
    reference.populate();
    for (int i = 0; i < 6; ++i)
        reference.step();
    ASSERT_EQ(reference.checkpoint(ckpt.path), CkptStatus::kOk);

    // Cold start: a fresh fleet object, as after a process kill.
    FarMemorySystem resumed(config);
    ASSERT_EQ(resumed.restore(ckpt.path), CkptStatus::kOk);
    EXPECT_EQ(resumed.now(), reference.now());
    EXPECT_EQ(resumed.state_digest(), reference.state_digest());
    EXPECT_EQ(resumed.num_jobs(), reference.num_jobs());

    for (int i = 0; i < 12; ++i) {
        reference.step();
        resumed.step();
        ASSERT_EQ(resumed.state_digest(), reference.state_digest())
            << "diverged " << i << " steps after restore";
    }
    // The merged telemetry databases must agree entry for entry.
    EXPECT_EQ(resumed.merged_trace().entries(),
              reference.merged_trace().entries());
}

TEST(FleetCkpt, RestoreIntoPopulatedFleetReplacesState)
{
    TempCkpt ckpt("fleet_ckpt_replace.ckpt");
    FleetConfig config = small_fleet_config();

    FarMemorySystem a(config);
    a.populate();
    for (int i = 0; i < 4; ++i)
        a.step();
    ASSERT_EQ(a.checkpoint(ckpt.path), CkptStatus::kOk);
    std::uint64_t digest_at_ckpt = a.state_digest();

    // Let the original drift past the checkpoint, then roll it back.
    for (int i = 0; i < 5; ++i)
        a.step();
    ASSERT_NE(a.state_digest(), digest_at_ckpt);
    ASSERT_EQ(a.restore(ckpt.path), CkptStatus::kOk);
    EXPECT_EQ(a.state_digest(), digest_at_ckpt);
}

/** Read a whole file into bytes. */
std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

/** Write bytes to a file. */
void
spit(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(FleetCkpt, RejectionsLeaveLiveFleetUntouched)
{
    TempCkpt good("fleet_ckpt_good.ckpt");
    TempCkpt bad("fleet_ckpt_bad.ckpt");
    FleetConfig config = small_fleet_config();

    FarMemorySystem fleet(config);
    fleet.populate();
    for (int i = 0; i < 4; ++i)
        fleet.step();
    ASSERT_EQ(fleet.checkpoint(good.path), CkptStatus::kOk);
    for (int i = 0; i < 3; ++i)
        fleet.step();
    const std::uint64_t live_digest = fleet.state_digest();
    const SimTime live_now = fleet.now();
    std::vector<std::uint8_t> bytes = slurp(good.path);
    ASSERT_GT(bytes.size(), 64u);

    auto expect_rejected = [&](CkptStatus want) {
        EXPECT_EQ(fleet.restore(bad.path), want);
        EXPECT_EQ(fleet.state_digest(), live_digest)
            << "a rejected restore mutated the live fleet";
        EXPECT_EQ(fleet.now(), live_now);
    };

    {  // missing file
        std::remove(bad.path.c_str());
        expect_rejected(CkptStatus::kIoError);
    }
    {  // truncation
        std::vector<std::uint8_t> t(bytes.begin(), bytes.end() - 9);
        spit(bad.path, t);
        expect_rejected(CkptStatus::kTruncated);
    }
    {  // CRC flip (corrupt the final section's payload tail)
        std::vector<std::uint8_t> t = bytes;
        t[t.size() - 6] ^= 0x40;
        spit(bad.path, t);
        expect_rejected(CkptStatus::kCrcMismatch);
    }
    {  // not a checkpoint
        std::vector<std::uint8_t> t = bytes;
        t[3] ^= 0xFF;
        spit(bad.path, t);
        expect_rejected(CkptStatus::kBadMagic);
    }
    {  // version from a different lineage
        std::vector<std::uint8_t> t = bytes;
        t[8] ^= 0x04;
        spit(bad.path, t);
        expect_rejected(CkptStatus::kBadVersion);
    }
    {  // CRC-valid but semantically corrupt section payload
        CkptReader reader;
        ASSERT_EQ(reader.read_file(good.path), CkptStatus::kOk);
        CkptWriter writer;
        for (const CkptSection &section : reader.sections()) {
            if (section.name == "cluster.0000")
                writer.add_section(section.name, {0xDE, 0xAD, 0xBE});
            else
                writer.add_section(section.name, section.payload);
        }
        ASSERT_EQ(writer.write_file(bad.path), CkptStatus::kOk);
        expect_rejected(CkptStatus::kCorruptPayload);
    }
}

TEST(FleetCkpt, ConfigMismatchIsRejected)
{
    TempCkpt ckpt("fleet_ckpt_config.ckpt");
    FleetConfig config = small_fleet_config();
    FarMemorySystem fleet(config);
    fleet.populate();
    fleet.step();
    ASSERT_EQ(fleet.checkpoint(ckpt.path), CkptStatus::kOk);

    // Any trajectory-relevant config difference must be refused --
    // seed, topology, tunables, and fault plane alike.
    auto refuses = [&](FleetConfig other) {
        FarMemorySystem victim(other);
        std::uint64_t before = victim.state_digest();
        EXPECT_EQ(victim.restore(ckpt.path),
                  CkptStatus::kConfigMismatch);
        EXPECT_EQ(victim.state_digest(), before);
    };
    {
        FleetConfig other = config;
        other.seed = config.seed + 1;
        refuses(other);
    }
    {
        FleetConfig other = config;
        other.cluster.num_machines += 1;
        refuses(other);
    }
    {
        FleetConfig other = config;
        other.cluster.machine.slo.percentile_k = 95.0;
        refuses(other);
    }
    {
        FleetConfig other = config;
        other.cluster.machine.fault.donor_failure_prob = 0.0;
        refuses(other);
    }
    // serial_step is the one deliberate exclusion: serial and
    // parallel stepping are digest-identical, so a checkpoint from
    // one must restore into the other.
    {
        FleetConfig other = config;
        other.serial_step = false;
        FarMemorySystem victim(other);
        EXPECT_EQ(victim.restore(ckpt.path), CkptStatus::kOk);
        EXPECT_EQ(victim.state_digest(), fleet.state_digest());
    }
}

}  // namespace
}  // namespace sdfm
