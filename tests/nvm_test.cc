/**
 * @file
 * Tests for the hardware (NVM) far-memory tier and the two-tier
 * routing policy -- the paper's future-work configuration.
 */

#include <gtest/gtest.h>

#include "mem/kreclaimd.h"
#include "mem/kstaled.h"
#include "mem/memcg.h"
#include "mem/nvm_tier.h"
#include "mem/tier_stack.h"
#include "mem/zswap.h"
#include "node/machine.h"
#include "workload/job.h"

namespace sdfm {
namespace {

NvmTierParams
small_nvm(std::uint64_t capacity)
{
    NvmTierParams params;
    params.capacity_pages = capacity;
    return params;
}

struct Rig
{
    explicit Rig(std::uint32_t pages, std::uint64_t nvm_capacity,
                 ContentMix mix = ContentMix(0.0, 0.0, 1.0, 0.0, 0.0))
        : compressor(make_compressor(CompressionMode::kModeled)),
          zswap(compressor.get(), 1), nvm(small_nvm(nvm_capacity), 2),
          cg(1, pages, 42, mix, 0)
    {
    }

    /**
     * Wire zswap + nvm into a stack with the given nvm age band
     * (multiples of the job threshold) and compute the demotion plan.
     */
    DemotionPlan &route_nvm(double band_lo, double band_hi)
    {
        TierSpec base;
        base.label = "zswap";
        stack.set_base(base, &zswap);
        TierSpec spec;
        spec.label = "nvm";
        spec.band_lo = band_lo;
        spec.band_hi = band_hi;
        stack.add_tier(spec, &nvm);
        BandRoutingPolicy().plan(stack, plan);
        return plan;
    }

    std::unique_ptr<Compressor> compressor;
    Zswap zswap;
    NvmTier nvm;
    Memcg cg;
    Kstaled kstaled;
    Kreclaimd kreclaimd;
    TierStack stack;
    DemotionPlan plan;
};

TEST(NvmTier, StoreLoadRoundTrip)
{
    Rig rig(10, 100);
    ASSERT_TRUE(rig.nvm.store(rig.cg, 0));
    EXPECT_TRUE(rig.cg.page_test(0, kPageInFarTier));
    EXPECT_EQ(rig.cg.resident_pages(), 9u);
    EXPECT_EQ(rig.cg.tier_pages(), 1u);
    EXPECT_EQ(rig.nvm.used_pages(), 1u);

    rig.nvm.load(rig.cg, 0);
    EXPECT_FALSE(rig.cg.page_test(0, kPageInFarTier));
    EXPECT_EQ(rig.cg.resident_pages(), 10u);
    EXPECT_EQ(rig.cg.stats().nvm_promotions, 1u);
    EXPECT_GT(rig.cg.stats().nvm_read_latency_us_sum, 0.0);
    EXPECT_GT(rig.cg.stats().nvm_stall_cycles, 0.0);
}

TEST(NvmTier, FixedCapacityRejects)
{
    Rig rig(10, 2);
    EXPECT_TRUE(rig.nvm.store(rig.cg, 0));
    EXPECT_TRUE(rig.nvm.store(rig.cg, 1));
    EXPECT_FALSE(rig.nvm.has_space());
    EXPECT_FALSE(rig.nvm.store(rig.cg, 2));
    EXPECT_EQ(rig.nvm.stats().rejected_full, 1u);
    EXPECT_DOUBLE_EQ(rig.nvm.utilization(), 1.0);
}

TEST(NvmTier, TouchPromotesFromNvm)
{
    Rig rig(10, 100);
    rig.route_nvm(1.0, 10.0);
    rig.nvm.store(rig.cg, 3);
    bool promoted = rig.cg.touch(3, false, rig.stack);
    EXPECT_TRUE(promoted);
    EXPECT_FALSE(rig.cg.page_test(3, kPageInFarTier));
}

TEST(NvmTier, DropAllReleasesCapacity)
{
    Rig rig(20, 100);
    for (PageId p = 0; p < 20; p += 2)
        rig.nvm.store(rig.cg, p);
    EXPECT_EQ(rig.nvm.used_pages(), 10u);
    rig.nvm.drop_all(rig.cg);
    EXPECT_EQ(rig.nvm.used_pages(), 0u);
    EXPECT_EQ(rig.cg.tier_pages(), 0u);
}

TEST(NvmTier, AcceptsIncompressiblePages)
{
    // No compression happens on the hardware tier: pages zswap must
    // reject are first-class citizens here.
    Rig rig(10, 100, ContentMix(0.0, 0.0, 0.0, 0.0, 1.0));
    rig.cg.page_set(0, kPageIncompressible);
    EXPECT_TRUE(rig.nvm.store(rig.cg, 0));
}

TEST(TwoTierRouting, ModeratelyColdToNvmDeepColdToZswap)
{
    Rig rig(10, 100);
    rig.kstaled.scan(rig.cg);  // all pages at age 1
    // Pages 0-4 get deep-cold ages by hand.
    for (PageId p = 0; p < 5; ++p)
        rig.cg.set_page_age(p, 50);
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(1);
    ReclaimResult result =
        rig.kreclaimd.reclaim_cold(rig.cg, rig.route_nvm(1.0, 10.0));
    EXPECT_EQ(result.pages_stored, 10u);
    EXPECT_EQ(result.pages_to_tier, 5u);  // the age-1 pages
    for (PageId p = 0; p < 5; ++p)
        EXPECT_TRUE(rig.cg.page_test(p, kPageInZswap)) << p;
    for (PageId p = 5; p < 10; ++p)
        EXPECT_TRUE(rig.cg.page_test(p, kPageInFarTier)) << p;
}

TEST(TwoTierRouting, NvmOverflowFallsBackToZswap)
{
    Rig rig(10, 3);
    rig.kstaled.scan(rig.cg);
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(1);
    ReclaimResult result =
        rig.kreclaimd.reclaim_cold(rig.cg, rig.route_nvm(1.0, 10.0));
    EXPECT_EQ(result.pages_to_tier, 3u);
    EXPECT_EQ(result.pages_stored, 10u);  // overflow went to zswap
    EXPECT_EQ(rig.cg.zswap_pages(), 7u);
}

TEST(TwoTierRouting, EmptyBandDisablesTier)
{
    Rig rig(10, 100);
    rig.kstaled.scan(rig.cg);
    rig.cg.set_zswap_enabled(true);
    rig.cg.set_reclaim_threshold(1);
    // [T, T) is empty: every cold page goes to the zswap catch-all.
    ReclaimResult result =
        rig.kreclaimd.reclaim_cold(rig.cg, rig.route_nvm(1.0, 1.0));
    EXPECT_EQ(result.pages_to_tier, 0u);
    EXPECT_EQ(rig.cg.zswap_pages(), 10u);
}

TEST(TwoTierMachine, EndToEnd)
{
    MachineConfig config;
    config.dram_pages = 128ull * kMiB / kPageSize;
    config.compression = CompressionMode::kModeled;
    config.nvm.capacity_pages = 512;  // small: force overflow into zswap
    Machine machine(0, config, 3);
    ASSERT_LT(machine.tiers().find(TierKind::kNvm),
              machine.tiers().size());
    machine.add_job(std::make_unique<Job>(1, profile_by_name("kv_cache"),
                                          7, 0));
    machine.add_job(std::make_unique<Job>(2, profile_by_name("logs"),
                                          8, 0));
    for (SimTime now = 0; now < 2 * kHour; now += kMinute)
        machine.step(now);
    EXPECT_GT(machine.tier_stored_pages(), 0u);
    EXPECT_GT(machine.zswap_stored_pages(), 0u);
    EXPECT_EQ(machine.far_memory_pages(),
              machine.tier_stored_pages() +
                  machine.zswap_stored_pages());
    EXPECT_GT(machine.cold_memory_coverage(), 0.05);
    // NVM promotions happened and were fast (sub-2us means).
    std::uint64_t nvm_promotions = 0;
    double latency_sum = 0.0;
    for (const auto &job : machine.jobs()) {
        nvm_promotions += job->memcg().stats().nvm_promotions;
        latency_sum += job->memcg().stats().nvm_read_latency_us_sum;
    }
    if (nvm_promotions > 0) {
        EXPECT_LT(latency_sum / static_cast<double>(nvm_promotions),
                  2.0);
    }
    // Teardown releases NVM capacity.
    machine.remove_job(1);
    machine.remove_job(2);
    EXPECT_EQ(machine.tier_stored_pages(), 0u);
}

TEST(TwoTierMachine, DisabledByDefault)
{
    MachineConfig config;
    Machine machine(0, config, 3);
    EXPECT_EQ(machine.tiers().deep_size(), 0u);
    EXPECT_EQ(machine.tier_stored_pages(), 0u);
}

}  // namespace
}  // namespace sdfm
