/**
 * @file
 * Tests for the SDFM_INVARIANT tier and the determinism contract.
 *
 * The corruption tests use the debug_* hooks (only compiled when
 * SDFM_CHECK_INVARIANTS is defined) to break an internal invariant
 * on purpose and prove check_invariants() catches it; they skip in
 * builds without the flag. The serial-vs-parallel digest test is
 * ungated: serial_step is a plain config knob, and the digests must
 * agree in every build.
 */

#include <gtest/gtest.h>

#include "compression/compressor.h"
#include "core/far_memory_system.h"
#include "fault/circuit_breaker.h"
#include "mem/memcg.h"
#include "mem/zswap.h"
#include "node/threshold_controller.h"
#include "util/invariant.h"

namespace sdfm {
namespace {

[[maybe_unused]] ContentMix
compressible_mix()
{
    return ContentMix(0.0, 0.0, 1.0, 0.0, 0.0);
}

FleetConfig
tiny_fleet()
{
    FleetConfig config;
    config.num_clusters = 2;
    config.cluster.num_machines = 3;
    config.cluster.machine.dram_pages = 96ull * kMiB / kPageSize;
    config.cluster.machine.compression = CompressionMode::kModeled;
    config.cluster.mix = typical_fleet_mix();
    config.cluster.target_utilization = 0.7;
    config.seed = 7;
    return config;
}

// ------------------------------------------------- determinism contract

TEST(DeterminismTest, SerialAndParallelSteppingAgree)
{
    FleetConfig serial_config = tiny_fleet();
    serial_config.serial_step = true;
    FleetConfig parallel_config = tiny_fleet();
    parallel_config.serial_step = false;

    FarMemorySystem serial(serial_config);
    FarMemorySystem parallel(parallel_config);
    serial.populate();
    parallel.populate();
    ASSERT_EQ(serial.state_digest(), parallel.state_digest());

    for (int minute = 0; minute < 30; ++minute) {
        serial.step();
        parallel.step();
        ASSERT_EQ(serial.state_digest(), parallel.state_digest())
            << "digests diverged at minute " << minute;
    }
}

TEST(DeterminismTest, SameSeedSameTrajectory)
{
    FarMemorySystem a(tiny_fleet());
    FarMemorySystem b(tiny_fleet());
    a.populate();
    b.populate();
    a.run(20 * kMinute);
    b.run(20 * kMinute);
    EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(DeterminismTest, DigestIsSensitiveToState)
{
    FarMemorySystem a(tiny_fleet());
    a.populate();
    std::uint64_t before = a.state_digest();
    a.step();
    EXPECT_NE(a.state_digest(), before);
}

// ---------------------------------------------------- positive checking

TEST(InvariantTest, HealthyFleetPassesChecks)
{
    FarMemorySystem fleet(tiny_fleet());
    fleet.populate();
    fleet.run(30 * kMinute);
    // Machine::step already checks per step in invariant builds; this
    // exercises the whole-fleet entry point (a no-op when the tier is
    // compiled out, which is also worth covering).
    fleet.check_invariants();
}

TEST(InvariantTest, HealthyBreakerAndControllerPassChecks)
{
    CircuitBreaker breaker;
    for (int i = 0; i < 10; ++i) {
        breaker.record_failure();
        breaker.tick();
    }
    breaker.check_invariants();

    ThresholdController controller(SloConfig{}, /*job_start=*/0);
    controller.check_invariants();
}

// -------------------------------------------------- corruption (death)

#ifdef SDFM_CHECK_INVARIANTS

TEST(InvariantDeathTest, MemcgResidencyFlagMismatchDies)
{
    Memcg cg(1, 64, 42, compressible_mix(), 0);
    // Claim a page moved to zswap without storing it: the InZswap
    // flag is set with no handle and the residency counters skew.
    cg.note_stored_in_zswap(3);
    EXPECT_DEATH(cg.check_invariants(), "invariant violated");
}

TEST(InvariantDeathTest, ArenaByteAccountingCorruptionDies)
{
    auto compressor = make_compressor(CompressionMode::kModeled);
    Zswap zswap(compressor.get(), 1);
    Memcg cg(1, 64, 42, compressible_mix(), 0);
    ASSERT_TRUE(zswap.store(cg, 0));
    zswap.check_invariants();
    zswap.debug_arena().debug_corrupt_stored_bytes(1);
    EXPECT_DEATH(zswap.check_invariants(), "invariant violated");
}

TEST(InvariantDeathTest, BreakerIllegalStateDies)
{
    CircuitBreaker breaker;
    // Open with no hold-off countdown is unreachable through the
    // public transitions; forcing it must trip the check.
    EXPECT_DEATH(breaker.debug_force_state(BreakerState::kOpen),
                 "invariant violated");
}

TEST(InvariantDeathTest, ControllerPoolOverflowDies)
{
    SloConfig slo;
    ThresholdController controller(slo, /*job_start=*/0);
    controller.debug_overfill_pool(slo.history_window + 5);
    EXPECT_DEATH(controller.check_invariants(), "invariant violated");
}

#else  // !SDFM_CHECK_INVARIANTS

TEST(InvariantDeathTest, SkippedWithoutInvariantBuild)
{
    static_assert(!kInvariantsEnabled);
    GTEST_SKIP() << "corruption tests need -DSDFM_CHECK_INVARIANTS=ON";
}

#endif  // SDFM_CHECK_INVARIANTS

}  // namespace
}  // namespace sdfm
