/**
 * @file
 * Tests for the sdfm_lint rule engine: each rule is exercised with
 * known-bad fixture snippets (which must produce findings) and
 * known-good ones (which must not), plus the suppression-comment
 * semantics and the header/source pair propagation that catches
 * iteration in foo.cc over an unordered member declared in foo.h.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint_engine.h"
#include "lint_state.h"

namespace sdfm {
namespace lint {
namespace {

/** Lint one in-memory file and return its findings. */
std::vector<Finding>
lint_one(const std::string &path, const std::string &content)
{
    return lint_sources({Source{path, content}});
}

/** Count findings for one rule. */
std::size_t
count_rule(const std::vector<Finding> &findings, const std::string &rule)
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [&](const Finding &f) { return f.rule == rule; }));
}

// ------------------------------------------------------------ wallclock

TEST(LintWallclockTest, FlagsRandAndChronoClocks)
{
    auto findings = lint_one("src/x.cc",
                             "int f() { return rand(); }\n"
                             "std::mt19937 gen;\n"
                             "auto t = std::chrono::steady_clock::now();\n");
    EXPECT_EQ(count_rule(findings, "wallclock"), 3u);
    EXPECT_EQ(findings[0].line, 1);
}

TEST(LintWallclockTest, RequiresCallSyntaxForFunctionNames)
{
    // `time` as a plain identifier (a variable) is fine; only the
    // call `time(...)` is banned.
    auto findings = lint_one("src/x.cc",
                             "SimTime time = 0;\n"
                             "SimTime t2 = time (nullptr);\n");
    EXPECT_EQ(count_rule(findings, "wallclock"), 1u);
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintWallclockTest, ExemptsRngAndSimTime)
{
    EXPECT_TRUE(lint_one("src/util/rng.cc",
                         "std::mt19937 reference_gen;\n")
                    .empty());
    EXPECT_TRUE(lint_one("src/util/sim_time.h",
                         "#pragma once\n"
                         "// uses steady_clock for doc purposes\n")
                    .empty());
}

TEST(LintWallclockTest, IgnoresCommentsAndStrings)
{
    auto findings = lint_one("src/x.cc",
                             "// rand() is banned\n"
                             "const char *s = \"rand()\";\n");
    EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------- unordered-iter

TEST(LintUnorderedIterTest, FlagsRangeForOverMember)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_map<int, int> table_;\n"
        "void f() { for (const auto &[k, v] : table_) use(k); }\n");
    EXPECT_EQ(count_rule(findings, "unordered-iter"), 1u);
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintUnorderedIterTest, FlagsExplicitIteratorWalk)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> seen_;\n"
        "auto it = seen_.begin();\n");
    EXPECT_EQ(count_rule(findings, "unordered-iter"), 1u);
}

TEST(LintUnorderedIterTest, PropagatesAcrossHeaderSourcePair)
{
    // The member is declared in the header; the source iterates it.
    std::vector<Source> sources = {
        Source{"src/mem/thing.h",
               "#pragma once\n"
               "std::unordered_map<int, int> handles_;\n"},
        Source{"src/mem/thing.cc",
               "void f() { for (auto &kv : handles_) use(kv); }\n"},
    };
    auto findings = lint_sources(sources);
    ASSERT_EQ(count_rule(findings, "unordered-iter"), 1u);
    EXPECT_EQ(findings[0].path, "src/mem/thing.cc");
}

TEST(LintUnorderedIterTest, OrderedContainersAreFine)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::map<int, int> table_;\n"
        "void f() { for (const auto &[k, v] : table_) use(k); }\n");
    EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------- suppression

TEST(LintSuppressionTest, SameLineComment)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "for (int v : s_) count(v);  "
        "// sdfm-lint: allow(unordered-iter) -- pure count\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppressionTest, CommentOnPrecedingLine)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "// sdfm-lint: allow(unordered-iter) -- pure count\n"
        "for (int v : s_) count(v);\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppressionTest, MultiLineJustificationReaches)
{
    // The directive sits two comment lines above the statement; the
    // suppression must reach past its own justification text.
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "// sdfm-lint: allow(unordered-iter) -- the result of this\n"
        "// loop is order independent because it only counts\n"
        "// matching elements.\n"
        "for (int v : s_) count(v);\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppressionTest, DoesNotReachPastCode)
{
    // A code line between the suppression and the violation breaks
    // the reach: the suppression covers that code line, not the loop.
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "// sdfm-lint: allow(unordered-iter)\n"
        "int unrelated = 0;\n"
        "for (int v : s_) count(v);\n");
    EXPECT_EQ(count_rule(findings, "unordered-iter"), 1u);
}

TEST(LintSuppressionTest, AllowFileCoversWholeFile)
{
    auto findings = lint_one(
        "src/x.cc",
        "// sdfm-lint: allow-file(unordered-iter)\n"
        "std::unordered_set<int> s_;\n"
        "for (int v : s_) count(v);\n"
        "for (int v : s_) count(v);\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppressionTest, OnlyNamedRulesAreSuppressed)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "// sdfm-lint: allow(wallclock)\n"
        "for (int v : s_) count(v);\n");
    EXPECT_EQ(count_rule(findings, "unordered-iter"), 1u);
}

// ----------------------------------------------------- float-accounting

TEST(LintFloatAccountingTest, FlagsFloatDeclarationsOfExactQuantities)
{
    auto findings = lint_one("src/x.cc",
                             "double total_bytes = 0.0;\n"
                             "float page_count = 0;\n"
                             "double resident_pages = 0.0;\n");
    // "page_count" ends in _count; the other two contain bytes/pages.
    EXPECT_EQ(count_rule(findings, "float-accounting"), 3u);
}

TEST(LintFloatAccountingTest, CastsAndRatiosAreFine)
{
    auto findings = lint_one(
        "src/x.cc",
        "double frac = static_cast<double>(pool_bytes()) / total;\n"
        "double mean_latency_us = 0.0;\n");
    EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------- header-hygiene

TEST(LintHeaderHygieneTest, RequiresIncludeGuard)
{
    auto findings = lint_one("src/x.h", "int f();\n");
    EXPECT_EQ(count_rule(findings, "header-hygiene"), 1u);
    EXPECT_TRUE(lint_one("src/y.h",
                         "#ifndef SDFM_Y_H\n#define SDFM_Y_H\n"
                         "int f();\n#endif\n")
                    .empty());
    EXPECT_TRUE(lint_one("src/z.h", "#pragma once\nint f();\n").empty());
}

TEST(LintHeaderHygieneTest, FlagsUsingNamespaceInHeader)
{
    auto findings = lint_one("src/x.h",
                             "#pragma once\n"
                             "using namespace std;\n");
    EXPECT_EQ(count_rule(findings, "header-hygiene"), 1u);
    // Sources may use it (they do not leak into includers).
    EXPECT_TRUE(
        lint_one("src/x.cc", "using namespace std::chrono_literals;\n")
            .empty());
}

// ---------------------------------------------------------- metric-name

TEST(LintMetricNameTest, EnforcesSubsystemSnakeCase)
{
    auto findings = lint_one(
        "src/x.cc",
        "registry.counter(\"zswap.stores\").inc();\n"
        "registry.counter(\"BadName\").inc();\n"
        "registry->gauge(\"machine.Resident\").set(1.0);\n"
        "registry.histogram(\"kstaled.scan_cycles\", bounds);\n");
    EXPECT_EQ(count_rule(findings, "metric-name"), 2u);
}

TEST(LintMetricNameTest, IgnoresNonMemberCallsAndVariables)
{
    auto findings = lint_one(
        "src/x.cc",
        "counter(\"not a metric factory\");\n"   // free function
        "registry.counter(name).inc();\n");      // not a literal
    EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------ dynamic-cast

TEST(LintDynamicCastTest, FlagsDynamicCast)
{
    auto findings = lint_one(
        "src/x.cc",
        "NvmTier *n = dynamic_cast<NvmTier *>(tier);\n");
    EXPECT_EQ(count_rule(findings, "dynamic-cast"), 1u);
}

TEST(LintDynamicCastTest, IgnoresCommentsAndStrings)
{
    auto findings = lint_one(
        "src/x.cc",
        "// the old dynamic_cast accessors are gone\n"
        "const char *s = \"dynamic_cast\";\n"
        "int my_dynamic_cast_count = 0;\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintDynamicCastTest, SuppressibleWithJustification)
{
    auto findings = lint_one(
        "src/x.cc",
        "// sdfm-lint: allow(dynamic-cast) -- test double probes type\n"
        "NvmTier *n = dynamic_cast<NvmTier *>(tier);\n");
    EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------ machinery

TEST(LintEngineTest, RuleNamesMatchImplementedRules)
{
    auto names = rule_names();
    EXPECT_EQ(names.size(), 10u);
    EXPECT_NE(std::find(names.begin(), names.end(), "wallclock"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "unordered-iter"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "dynamic-cast"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "ckpt-coverage"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "digest-coverage"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "parallel-safety"),
              names.end());
    EXPECT_NE(
        std::find(names.begin(), names.end(), "stale-suppression"),
        names.end());
}

TEST(LintEngineTest, FindingsAreSortedAndFormatted)
{
    std::vector<Source> sources = {
        Source{"src/b.cc", "double cold_bytes = 0.0;\n"},
        Source{"src/a.cc", "int x = rand();\n"},
    };
    auto findings = lint_sources(sources);
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].path, "src/a.cc");
    EXPECT_EQ(findings[1].path, "src/b.cc");
    EXPECT_EQ(to_string(findings[0]).rfind("src/a.cc:1: [wallclock]", 0),
              0u);
}

// --------------------------------------------- member extraction model

/** Build the declaration model the state-coverage rules run on.
 *  @p sources must outlive the returned contexts (they are aliased). */
StateModel
model_of(const std::vector<Source> &sources,
         std::vector<FileContext> *contexts)
{
    contexts->clear();
    for (const Source &src : sources) {
        FileContext ctx;
        ctx.source = &src;
        ctx.pre = preprocess(src.content);
        ctx.code_lines = split_lines(ctx.pre.code);
        ctx.string_lines = split_lines(ctx.pre.code_with_strings);
        contexts->push_back(std::move(ctx));
    }
    return build_state_model(*contexts);
}

const StateClass *
find_class(const StateModel &model, const std::string &name)
{
    for (const StateClass &cls : model.classes) {
        if (cls.name == name)
            return &cls;
    }
    return nullptr;
}

std::vector<std::string>
member_names(const StateClass &cls)
{
    std::vector<std::string> names;
    for (const StateMember &m : cls.members)
        names.push_back(m.name);
    return names;
}

TEST(LintStateModelTest, ExtractsMutableMembersOfTemplateClass)
{
    std::vector<Source> sources = {Source{
        "src/x/box.h",
        "template <typename T>\n"
        "class Box\n"
        "{\n"
        "  public:\n"
        "    T get() const;\n"
        "    using Alias = T;\n"
        "  private:\n"
        "    T value_;\n"
        "    std::map<std::string, std::vector<T>> index_;\n"
        "    static int instances_;\n"
        "    const int limit_ = 4;\n"
        "    Box &parent_ref_;\n"
        "};\n"}};
    std::vector<FileContext> contexts;
    StateModel model = model_of(sources, &contexts);
    const StateClass *box = find_class(model, "Box");
    ASSERT_NE(box, nullptr);
    // Functions, aliases, statics, consts, and reference members are
    // not checkpointable mutable state.
    EXPECT_EQ(member_names(*box),
              (std::vector<std::string>{"value_", "index_"}));
}

TEST(LintStateModelTest, QualifiesNestedClassesAndSplitsDeclarators)
{
    std::vector<Source> sources = {Source{
        "src/x/outer.h",
        "class Outer\n"
        "{\n"
        "    struct Inner\n"
        "    {\n"
        "        std::uint64_t z_ = 0;\n"
        "    };\n"
        "    std::uint64_t a_ = 0, b_ = 1;\n"
        "    Inner inner_;\n"
        "};\n"}};
    std::vector<FileContext> contexts;
    StateModel model = model_of(sources, &contexts);
    const StateClass *outer = find_class(model, "Outer");
    const StateClass *inner = find_class(model, "Outer::Inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(member_names(*inner), (std::vector<std::string>{"z_"}));
    EXPECT_EQ(member_names(*outer),
              (std::vector<std::string>{"a_", "b_", "inner_"}));
}

TEST(LintStateModelTest, FindsOutOfLineBodiesAcrossHeaderSourcePair)
{
    std::vector<Source> sources = {
        Source{"src/x/thing.h",
               "class Thing\n"
               "{\n"
               "  public:\n"
               "    void ckpt_save(Serializer &s) const;\n"
               "    bool ckpt_load(Deserializer &d);\n"
               "  private:\n"
               "    std::uint64_t count_ = 0;\n"
               "};\n"},
        Source{"src/x/thing.cc",
               "void\n"
               "Thing::ckpt_save(Serializer &s) const\n"
               "{\n"
               "    s.put_u64(count_);\n"
               "}\n"
               "bool\n"
               "Thing::ckpt_load(Deserializer &d)\n"
               "{\n"
               "    count_ = d.get_u64();\n"
               "    return true;\n"
               "}\n"},
    };
    std::vector<FileContext> contexts;
    StateModel model = model_of(sources, &contexts);
    const StateClass *thing = find_class(model, "Thing");
    ASSERT_NE(thing, nullptr);
    EXPECT_EQ(thing->declared_methods.count("ckpt_save"), 1u);
    ASSERT_EQ(model.bodies.count("Thing"), 1u);
    const auto &bodies = model.bodies.at("Thing");
    ASSERT_EQ(bodies.count("ckpt_save"), 1u);
    EXPECT_NE(bodies.at("ckpt_save").find("count_"), std::string::npos);
    ASSERT_EQ(bodies.count("ckpt_load"), 1u);
}

// ---------------------------------------------------- ckpt-coverage

/** A checkpointed class whose save body forgot one member. */
static const char kDroppedFromSave[] =
    "class Widget\n"
    "{\n"
    "  public:\n"
    "    void ckpt_save(Serializer &s) const { s.put_u64(a_); }\n"
    "    bool ckpt_load(Deserializer &d)\n"
    "    {\n"
    "        a_ = d.get_u64();\n"
    "        b_ = d.get_u64();\n"
    "        return true;\n"
    "    }\n"
    "  private:\n"
    "    std::uint64_t a_ = 0;\n"
    "    std::uint64_t b_ = 0;\n"
    "};\n";

TEST(LintCkptCoverageTest, FiresWhenMemberDroppedFromSave)
{
    auto findings = lint_one("src/x/widget.h", kDroppedFromSave);
    ASSERT_EQ(count_rule(findings, "ckpt-coverage"), 1u);
    for (const Finding &f : findings) {
        if (f.rule != "ckpt-coverage")
            continue;
        EXPECT_EQ(f.line, 13);
        EXPECT_NE(f.message.find("Widget::b_"), std::string::npos);
    }
}

TEST(LintCkptCoverageTest, CoveredAndAnnotatedMembersAreClean)
{
    auto findings = lint_one(
        "src/x/widget.h",
        "class Widget\n"
        "{\n"
        "  public:\n"
        "    void ckpt_save(Serializer &s) const { s.put_u64(a_); }\n"
        "    bool ckpt_load(Deserializer &d)\n"
        "    {\n"
        "        a_ = d.get_u64();\n"
        "        return true;\n"
        "    }\n"
        "  private:\n"
        "    std::uint64_t a_ = 0;\n"
        "    // sdfm-state: non-semantic(scratch; rebuilt every step)\n"
        "    std::uint64_t scratch_ = 0;\n"
        "    // sdfm-state: derived(recomputed from a_ by ckpt_load)\n"
        "    std::uint64_t cache_ = 0;\n"
        "};\n");
    EXPECT_EQ(count_rule(findings, "ckpt-coverage"), 0u);
}

TEST(LintCkptCoverageTest, WireDriftFiresEvenWithAnnotation)
{
    // Saved-but-never-loaded is always wire drift: the annotation
    // cannot excuse bytes that go onto the wire and are never read.
    auto findings = lint_one(
        "src/x/widget.h",
        "class Widget\n"
        "{\n"
        "  public:\n"
        "    void ckpt_save(Serializer &s) const\n"
        "    {\n"
        "        s.put_u64(a_);\n"
        "        s.put_u64(orphan_);\n"
        "    }\n"
        "    bool ckpt_load(Deserializer &d)\n"
        "    {\n"
        "        a_ = d.get_u64();\n"
        "        return true;\n"
        "    }\n"
        "  private:\n"
        "    std::uint64_t a_ = 0;\n"
        "    // sdfm-state: non-semantic(not actually excusable)\n"
        "    std::uint64_t orphan_ = 0;\n"
        "};\n");
    ASSERT_EQ(count_rule(findings, "ckpt-coverage"), 1u);
    for (const Finding &f : findings) {
        if (f.rule == "ckpt-coverage") {
            EXPECT_NE(f.message.find("never read by"),
                      std::string::npos);
        }
    }
}

TEST(LintCkptCoverageTest, UnknownAnnotationTagIsReported)
{
    auto findings = lint_one(
        "src/x/widget.h",
        "class Widget\n"
        "{\n"
        "  public:\n"
        "    void ckpt_save(Serializer &s) const { s.put_u64(a_); }\n"
        "    bool ckpt_load(Deserializer &d)\n"
        "    {\n"
        "        a_ = d.get_u64();\n"
        "        return true;\n"
        "    }\n"
        "  private:\n"
        "    std::uint64_t a_ = 0;\n"
        "    // sdfm-state: transient(typo of a known tag)\n"
        "    std::uint64_t b_ = 0;\n"
        "};\n");
    ASSERT_EQ(count_rule(findings, "ckpt-coverage"), 1u);
    for (const Finding &f : findings) {
        if (f.rule == "ckpt-coverage") {
            EXPECT_NE(f.message.find("not recognized"),
                      std::string::npos);
        }
    }
}

TEST(LintCkptCoverageTest, AnnotationReachBreaksAcrossCode)
{
    // The annotation attaches to the next member only through
    // comments/blank lines; a code line in between breaks the reach,
    // so it cannot silently leak onto the following member.
    auto findings = lint_one(
        "src/x/widget.h",
        "class Widget\n"
        "{\n"
        "  public:\n"
        "    void ckpt_save(Serializer &s) const { s.put_u64(a_); }\n"
        "    bool ckpt_load(Deserializer &d)\n"
        "    {\n"
        "        a_ = d.get_u64();\n"
        "        return true;\n"
        "    }\n"
        "  private:\n"
        "    // sdfm-state: non-semantic(covers a_ only)\n"
        "\n"
        "    // ...reaches through blanks and comments...\n"
        "    std::uint64_t a_ = 0;\n"
        "    std::uint64_t stranded_ = 0;\n"
        "};\n");
    // a_ is covered by save+load anyway; stranded_ must still fire.
    ASSERT_EQ(count_rule(findings, "ckpt-coverage"), 1u);
    for (const Finding &f : findings) {
        if (f.rule == "ckpt-coverage") {
            EXPECT_NE(f.message.find("stranded_"), std::string::npos);
        }
    }
}

TEST(LintCkptCoverageTest, InterfaceOnlyClassesAreSkipped)
{
    // Pure declarations with no bodies anywhere (an interface) carry
    // no coverage obligations.
    auto findings = lint_one(
        "src/x/iface.h",
        "class Checkpointable\n"
        "{\n"
        "  public:\n"
        "    virtual void ckpt_save(Serializer &s) const = 0;\n"
        "    virtual bool ckpt_load(Deserializer &d) = 0;\n"
        "  private:\n"
        "    std::uint64_t tag_ = 0;\n"
        "};\n");
    EXPECT_EQ(count_rule(findings, "ckpt-coverage"), 0u);
}

// -------------------------------------------------- digest-coverage

TEST(LintDigestCoverageTest, FiresForUndigestedMember)
{
    auto findings = lint_one(
        "src/x/gadget.h",
        "class Gadget\n"
        "{\n"
        "  public:\n"
        "    std::uint64_t state_digest() const { return x_; }\n"
        "  private:\n"
        "    std::uint64_t x_ = 0;\n"
        "    std::uint64_t y_ = 0;\n"
        "};\n");
    ASSERT_EQ(count_rule(findings, "digest-coverage"), 1u);
    for (const Finding &f : findings) {
        if (f.rule == "digest-coverage") {
            EXPECT_EQ(f.line, 7);
            EXPECT_NE(f.message.find("Gadget::y_"), std::string::npos);
        }
    }
}

TEST(LintDigestCoverageTest, AnnotationExemptsMember)
{
    auto findings = lint_one(
        "src/x/gadget.h",
        "class Gadget\n"
        "{\n"
        "  public:\n"
        "    std::uint64_t state_digest() const { return x_; }\n"
        "  private:\n"
        "    std::uint64_t x_ = 0;\n"
        "    // sdfm-state: non-semantic(memoized lookup)\n"
        "    std::uint64_t y_ = 0;\n"
        "};\n");
    EXPECT_EQ(count_rule(findings, "digest-coverage"), 0u);
}

// -------------------------------------------------- parallel-safety

static const char kSharedBrokerHeader[] =
    "class Broker\n"
    "{\n"
    "  public:\n"
    "    void grant(std::uint64_t pages);\n"
    "    std::uint64_t donated_ = 0;\n"
    "};\n";

TEST(LintParallelSafetyTest, FlagsWritesAndCallsFromMachineLayer)
{
    std::vector<Source> sources = {
        Source{"src/cluster/broker.h", kSharedBrokerHeader},
        Source{"src/mem/donor.cc",
               "void f(Broker *broker)\n"
               "{\n"
               "    broker->donated_ = 1;\n"
               "    broker->grant(1);\n"
               "}\n"},
    };
    auto findings = lint_sources(sources);
    EXPECT_EQ(count_rule(findings, "parallel-safety"), 2u);
}

TEST(LintParallelSafetyTest, SerialPhaseAndConstAliasesAreExempt)
{
    std::vector<Source> sources = {
        Source{"src/cluster/broker.h", kSharedBrokerHeader},
        // The broker/cluster layer itself runs in the serial control
        // phase -- identical code there is fine.
        Source{"src/cluster/pool.cc",
               "void f(Broker *broker)\n"
               "{\n"
               "    broker->donated_ = 1;\n"
               "    broker->grant(1);\n"
               "}\n"},
        // A const alias in the machine layer is a read-only view.
        Source{"src/mem/reader.cc",
               "std::uint64_t g(const Broker *ro)\n"
               "{\n"
               "    return ro->donated_;\n"
               "}\n"},
    };
    auto findings = lint_sources(sources);
    EXPECT_EQ(count_rule(findings, "parallel-safety"), 0u);
}

TEST(LintParallelSafetyTest, AliasPropagatesAcrossHeaderSourcePair)
{
    // The alias is declared in the header; the write sits in the
    // paired source file, like a member pointer used by methods.
    std::vector<Source> sources = {
        Source{"src/cluster/broker.h", kSharedBrokerHeader},
        Source{"src/node/agent.h",
               "class Agent\n"
               "{\n"
               "    Broker *broker_ = nullptr;\n"
               "};\n"},
        Source{"src/node/agent.cc",
               "void Agent::poke() { broker_->grant(1); }\n"},
    };
    auto findings = lint_sources(sources);
    EXPECT_EQ(count_rule(findings, "parallel-safety"), 1u);
}

// ------------------------------------------------ stale-suppression

TEST(LintStaleSuppressionTest, UnusedDirectiveIsItselfAFinding)
{
    auto findings = lint_one(
        "src/x.cc",
        "int a = rand();  // sdfm-lint: allow(wallclock) -- seeded\n"
        "// sdfm-lint: allow(dynamic-cast) -- nothing casts here\n"
        "int b = 0;\n");
    // The wallclock suppression fired (so no wallclock finding and
    // no stale report); the dynamic-cast one suppressed nothing.
    EXPECT_EQ(count_rule(findings, "wallclock"), 0u);
    ASSERT_EQ(count_rule(findings, "stale-suppression"), 1u);
    for (const Finding &f : findings) {
        if (f.rule == "stale-suppression") {
            EXPECT_EQ(f.line, 2);
            EXPECT_NE(f.message.find("allow(dynamic-cast)"),
                      std::string::npos);
        }
    }
}

TEST(LintStaleSuppressionTest, UnusedAllowFileIsFlagged)
{
    auto findings = lint_one(
        "src/x.cc",
        "// sdfm-lint: allow-file(unordered-iter) -- legacy\n"
        "int b = 0;\n");
    ASSERT_EQ(count_rule(findings, "stale-suppression"), 1u);
    EXPECT_NE(findings[0].message.find("allow-file(unordered-iter)"),
              std::string::npos);
}

TEST(LintStaleSuppressionTest, UsedAllowFileIsClean)
{
    auto findings = lint_one(
        "src/x.cc",
        "// sdfm-lint: allow-file(wallclock) -- fixture generator\n"
        "int a = rand();\n"
        "int b = rand();\n");
    EXPECT_EQ(count_rule(findings, "wallclock"), 0u);
    EXPECT_EQ(count_rule(findings, "stale-suppression"), 0u);
}

}  // namespace
}  // namespace lint
}  // namespace sdfm
