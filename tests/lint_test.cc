/**
 * @file
 * Tests for the sdfm_lint rule engine: each rule is exercised with
 * known-bad fixture snippets (which must produce findings) and
 * known-good ones (which must not), plus the suppression-comment
 * semantics and the header/source pair propagation that catches
 * iteration in foo.cc over an unordered member declared in foo.h.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint_engine.h"

namespace sdfm {
namespace lint {
namespace {

/** Lint one in-memory file and return its findings. */
std::vector<Finding>
lint_one(const std::string &path, const std::string &content)
{
    return lint_sources({Source{path, content}});
}

/** Count findings for one rule. */
std::size_t
count_rule(const std::vector<Finding> &findings, const std::string &rule)
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [&](const Finding &f) { return f.rule == rule; }));
}

// ------------------------------------------------------------ wallclock

TEST(LintWallclockTest, FlagsRandAndChronoClocks)
{
    auto findings = lint_one("src/x.cc",
                             "int f() { return rand(); }\n"
                             "std::mt19937 gen;\n"
                             "auto t = std::chrono::steady_clock::now();\n");
    EXPECT_EQ(count_rule(findings, "wallclock"), 3u);
    EXPECT_EQ(findings[0].line, 1);
}

TEST(LintWallclockTest, RequiresCallSyntaxForFunctionNames)
{
    // `time` as a plain identifier (a variable) is fine; only the
    // call `time(...)` is banned.
    auto findings = lint_one("src/x.cc",
                             "SimTime time = 0;\n"
                             "SimTime t2 = time (nullptr);\n");
    EXPECT_EQ(count_rule(findings, "wallclock"), 1u);
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintWallclockTest, ExemptsRngAndSimTime)
{
    EXPECT_TRUE(lint_one("src/util/rng.cc",
                         "std::mt19937 reference_gen;\n")
                    .empty());
    EXPECT_TRUE(lint_one("src/util/sim_time.h",
                         "#pragma once\n"
                         "// uses steady_clock for doc purposes\n")
                    .empty());
}

TEST(LintWallclockTest, IgnoresCommentsAndStrings)
{
    auto findings = lint_one("src/x.cc",
                             "// rand() is banned\n"
                             "const char *s = \"rand()\";\n");
    EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------- unordered-iter

TEST(LintUnorderedIterTest, FlagsRangeForOverMember)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_map<int, int> table_;\n"
        "void f() { for (const auto &[k, v] : table_) use(k); }\n");
    EXPECT_EQ(count_rule(findings, "unordered-iter"), 1u);
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintUnorderedIterTest, FlagsExplicitIteratorWalk)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> seen_;\n"
        "auto it = seen_.begin();\n");
    EXPECT_EQ(count_rule(findings, "unordered-iter"), 1u);
}

TEST(LintUnorderedIterTest, PropagatesAcrossHeaderSourcePair)
{
    // The member is declared in the header; the source iterates it.
    std::vector<Source> sources = {
        Source{"src/mem/thing.h",
               "#pragma once\n"
               "std::unordered_map<int, int> handles_;\n"},
        Source{"src/mem/thing.cc",
               "void f() { for (auto &kv : handles_) use(kv); }\n"},
    };
    auto findings = lint_sources(sources);
    ASSERT_EQ(count_rule(findings, "unordered-iter"), 1u);
    EXPECT_EQ(findings[0].path, "src/mem/thing.cc");
}

TEST(LintUnorderedIterTest, OrderedContainersAreFine)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::map<int, int> table_;\n"
        "void f() { for (const auto &[k, v] : table_) use(k); }\n");
    EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------- suppression

TEST(LintSuppressionTest, SameLineComment)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "for (int v : s_) count(v);  "
        "// sdfm-lint: allow(unordered-iter) -- pure count\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppressionTest, CommentOnPrecedingLine)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "// sdfm-lint: allow(unordered-iter) -- pure count\n"
        "for (int v : s_) count(v);\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppressionTest, MultiLineJustificationReaches)
{
    // The directive sits two comment lines above the statement; the
    // suppression must reach past its own justification text.
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "// sdfm-lint: allow(unordered-iter) -- the result of this\n"
        "// loop is order independent because it only counts\n"
        "// matching elements.\n"
        "for (int v : s_) count(v);\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppressionTest, DoesNotReachPastCode)
{
    // A code line between the suppression and the violation breaks
    // the reach: the suppression covers that code line, not the loop.
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "// sdfm-lint: allow(unordered-iter)\n"
        "int unrelated = 0;\n"
        "for (int v : s_) count(v);\n");
    EXPECT_EQ(count_rule(findings, "unordered-iter"), 1u);
}

TEST(LintSuppressionTest, AllowFileCoversWholeFile)
{
    auto findings = lint_one(
        "src/x.cc",
        "// sdfm-lint: allow-file(unordered-iter)\n"
        "std::unordered_set<int> s_;\n"
        "for (int v : s_) count(v);\n"
        "for (int v : s_) count(v);\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppressionTest, OnlyNamedRulesAreSuppressed)
{
    auto findings = lint_one(
        "src/x.cc",
        "std::unordered_set<int> s_;\n"
        "// sdfm-lint: allow(wallclock)\n"
        "for (int v : s_) count(v);\n");
    EXPECT_EQ(count_rule(findings, "unordered-iter"), 1u);
}

// ----------------------------------------------------- float-accounting

TEST(LintFloatAccountingTest, FlagsFloatDeclarationsOfExactQuantities)
{
    auto findings = lint_one("src/x.cc",
                             "double total_bytes = 0.0;\n"
                             "float page_count = 0;\n"
                             "double resident_pages = 0.0;\n");
    // "page_count" ends in _count; the other two contain bytes/pages.
    EXPECT_EQ(count_rule(findings, "float-accounting"), 3u);
}

TEST(LintFloatAccountingTest, CastsAndRatiosAreFine)
{
    auto findings = lint_one(
        "src/x.cc",
        "double frac = static_cast<double>(pool_bytes()) / total;\n"
        "double mean_latency_us = 0.0;\n");
    EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------- header-hygiene

TEST(LintHeaderHygieneTest, RequiresIncludeGuard)
{
    auto findings = lint_one("src/x.h", "int f();\n");
    EXPECT_EQ(count_rule(findings, "header-hygiene"), 1u);
    EXPECT_TRUE(lint_one("src/y.h",
                         "#ifndef SDFM_Y_H\n#define SDFM_Y_H\n"
                         "int f();\n#endif\n")
                    .empty());
    EXPECT_TRUE(lint_one("src/z.h", "#pragma once\nint f();\n").empty());
}

TEST(LintHeaderHygieneTest, FlagsUsingNamespaceInHeader)
{
    auto findings = lint_one("src/x.h",
                             "#pragma once\n"
                             "using namespace std;\n");
    EXPECT_EQ(count_rule(findings, "header-hygiene"), 1u);
    // Sources may use it (they do not leak into includers).
    EXPECT_TRUE(
        lint_one("src/x.cc", "using namespace std::chrono_literals;\n")
            .empty());
}

// ---------------------------------------------------------- metric-name

TEST(LintMetricNameTest, EnforcesSubsystemSnakeCase)
{
    auto findings = lint_one(
        "src/x.cc",
        "registry.counter(\"zswap.stores\").inc();\n"
        "registry.counter(\"BadName\").inc();\n"
        "registry->gauge(\"machine.Resident\").set(1.0);\n"
        "registry.histogram(\"kstaled.scan_cycles\", bounds);\n");
    EXPECT_EQ(count_rule(findings, "metric-name"), 2u);
}

TEST(LintMetricNameTest, IgnoresNonMemberCallsAndVariables)
{
    auto findings = lint_one(
        "src/x.cc",
        "counter(\"not a metric factory\");\n"   // free function
        "registry.counter(name).inc();\n");      // not a literal
    EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------ dynamic-cast

TEST(LintDynamicCastTest, FlagsDynamicCast)
{
    auto findings = lint_one(
        "src/x.cc",
        "NvmTier *n = dynamic_cast<NvmTier *>(tier);\n");
    EXPECT_EQ(count_rule(findings, "dynamic-cast"), 1u);
}

TEST(LintDynamicCastTest, IgnoresCommentsAndStrings)
{
    auto findings = lint_one(
        "src/x.cc",
        "// the old dynamic_cast accessors are gone\n"
        "const char *s = \"dynamic_cast\";\n"
        "int my_dynamic_cast_count = 0;\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintDynamicCastTest, SuppressibleWithJustification)
{
    auto findings = lint_one(
        "src/x.cc",
        "// sdfm-lint: allow(dynamic-cast) -- test double probes type\n"
        "NvmTier *n = dynamic_cast<NvmTier *>(tier);\n");
    EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------ machinery

TEST(LintEngineTest, RuleNamesMatchImplementedRules)
{
    auto names = rule_names();
    EXPECT_EQ(names.size(), 6u);
    EXPECT_NE(std::find(names.begin(), names.end(), "wallclock"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "unordered-iter"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "dynamic-cast"),
              names.end());
}

TEST(LintEngineTest, FindingsAreSortedAndFormatted)
{
    std::vector<Source> sources = {
        Source{"src/b.cc", "double cold_bytes = 0.0;\n"},
        Source{"src/a.cc", "int x = rand();\n"},
    };
    auto findings = lint_sources(sources);
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].path, "src/a.cc");
    EXPECT_EQ(findings[1].path, "src/b.cc");
    EXPECT_EQ(to_string(findings[0]).rfind("src/a.cc:1: [wallclock]", 0),
              0u);
}

}  // namespace
}  // namespace lint
}  // namespace sdfm
