/**
 * @file
 * Tests for the workload substrate: access-pattern generation, job
 * archetypes, Job stepping, and trace serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "compression/compressor.h"
#include "mem/zswap.h"
#include "workload/access_pattern.h"
#include "workload/job.h"
#include "workload/job_profile.h"
#include "workload/trace.h"

namespace sdfm {
namespace {

// ------------------------------------------------------ access pattern

TEST(AccessPattern, DeterministicForSameSeed)
{
    JobProfile profile = profile_by_name("bigtable");
    AccessPattern a(profile, 1000, Rng(5), 0);
    AccessPattern b(profile, 1000, Rng(5), 0);
    for (SimTime t = 0; t < 30 * kMinute; t += kMinute) {
        std::vector<std::pair<PageId, bool>> ea, eb;
        a.step(t, kMinute,
               [&](PageId p, bool w) { ea.emplace_back(p, w); });
        b.step(t, kMinute,
               [&](PageId p, bool w) { eb.emplace_back(p, w); });
        ASSERT_EQ(ea, eb);
    }
}

TEST(AccessPattern, ClassFractionsRoughlyMatchProfile)
{
    JobProfile profile;
    profile.hot_frac = 0.5;
    profile.warm_frac = 0.3;
    profile.diurnal_frac = 0.0;
    profile.cold_frac = 0.1;
    AccessPattern pattern(profile, 20000, Rng(3), 0);
    // Jitter is +/-25%-ish; allow slack.
    EXPECT_NEAR(pattern.class_fraction(ReuseClass::kHot), 0.5, 0.15);
    EXPECT_NEAR(pattern.class_fraction(ReuseClass::kWarm), 0.3, 0.12);
    EXPECT_NEAR(pattern.class_fraction(ReuseClass::kCold), 0.1, 0.06);
    double total = 0.0;
    for (int c = 0; c < static_cast<int>(ReuseClass::kNumClasses); ++c)
        total += pattern.class_fraction(static_cast<ReuseClass>(c));
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AccessPattern, HotPagesAccessedOften)
{
    JobProfile profile;
    profile.hot_frac = 1.0;
    profile.warm_frac = 0.0;
    profile.diurnal_frac = 0.0;
    profile.cold_frac = 0.0;
    profile.hot_gap_mean = 30.0;
    profile.diurnal_amplitude = 0.0;
    AccessPattern pattern(profile, 100, Rng(7), 0);
    std::uint64_t accesses = 0;
    for (SimTime t = 0; t < kHour; t += kMinute)
        accesses += pattern.step(t, kMinute, [](PageId, bool) {});
    // 100 pages re-accessed every ~30 s for an hour: ~12000 events.
    EXPECT_GT(accesses, 8000u);
    EXPECT_LT(accesses, 16000u);
}

TEST(AccessPattern, FrozenPagesMostlySilent)
{
    JobProfile profile;
    profile.hot_frac = 0.0;
    profile.warm_frac = 0.0;
    profile.diurnal_frac = 0.0;
    profile.cold_frac = 0.0;  // all frozen
    profile.frozen_reaccess_prob = 0.0;
    AccessPattern pattern(profile, 1000, Rng(9), 0);
    std::uint64_t accesses = 0;
    for (SimTime t = 0; t < 4 * kHour; t += kMinute)
        accesses += pattern.step(t, kMinute, [](PageId, bool) {});
    // Exactly one initial touch per page, nothing after.
    EXPECT_EQ(accesses, 1000u);
}

TEST(AccessPattern, DiurnalMultiplierPeaksAtPeakHour)
{
    JobProfile profile;
    profile.diurnal_amplitude = 0.5;
    profile.diurnal_peak_hour = 14.0;
    AccessPattern pattern(profile, 10, Rng(11), 0);
    SimTime peak = static_cast<SimTime>(14.0 * 3600.0);
    SimTime trough = static_cast<SimTime>(2.0 * 3600.0);
    EXPECT_NEAR(pattern.diurnal_multiplier(peak), 1.5, 1e-9);
    EXPECT_NEAR(pattern.diurnal_multiplier(trough), 0.5, 1e-9);
}

TEST(AccessPattern, WriteFractionRespected)
{
    JobProfile profile;
    profile.hot_frac = 1.0;
    profile.warm_frac = 0.0;
    profile.diurnal_frac = 0.0;
    profile.cold_frac = 0.0;
    profile.write_frac = 0.25;
    AccessPattern pattern(profile, 200, Rng(13), 0);
    std::uint64_t writes = 0, total = 0;
    for (SimTime t = 0; t < 2 * kHour; t += kMinute) {
        total += pattern.step(t, kMinute, [&](PageId, bool w) {
            writes += w ? 1 : 0;
        });
    }
    ASSERT_GT(total, 1000u);
    EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(total),
                0.25, 0.03);
}

TEST(AccessPattern, ScanEventsTouchSwath)
{
    JobProfile profile;
    profile.hot_frac = 0.0;
    profile.warm_frac = 0.0;
    profile.diurnal_frac = 0.0;
    profile.cold_frac = 0.0;  // all frozen: only scans touch pages
    profile.frozen_reaccess_prob = 0.0;
    profile.scan_interval_mean = 30 * kMinute;
    profile.scan_fraction = 0.5;
    AccessPattern pattern(profile, 2000, Rng(21), 0);
    std::uint64_t accesses = 0;
    for (SimTime t = 0; t < 4 * kHour; t += kMinute)
        accesses += pattern.step(t, kMinute, [](PageId, bool) {});
    // Initial touches (2000) plus ~8 scans of ~1000 pages each.
    EXPECT_GT(accesses, 2000u + 3000u);
    EXPECT_LT(accesses, 2000u + 16000u);
}

TEST(AccessPattern, NoScansWhenDisabled)
{
    JobProfile profile;
    profile.hot_frac = 0.0;
    profile.warm_frac = 0.0;
    profile.diurnal_frac = 0.0;
    profile.cold_frac = 0.0;
    profile.frozen_reaccess_prob = 0.0;
    profile.scan_interval_mean = 0;  // disabled
    AccessPattern pattern(profile, 500, Rng(23), 0);
    EXPECT_EQ(pattern.next_scan(), 0);
    std::uint64_t accesses = 0;
    for (SimTime t = 0; t < 2 * kHour; t += kMinute)
        accesses += pattern.step(t, kMinute, [](PageId, bool) {});
    EXPECT_EQ(accesses, 500u);  // initial touches only
}

// ------------------------------------------------------------ profiles

TEST(JobProfileTest, TypicalMixIsWellFormed)
{
    FleetMix mix = typical_fleet_mix();
    ASSERT_EQ(mix.profiles.size(), mix.weights.size());
    ASSERT_GE(mix.profiles.size(), 5u);
    for (const JobProfile &p : mix.profiles) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.min_pages, 0u);
        EXPECT_LE(p.min_pages, p.max_pages);
        double reuse = p.hot_frac + p.warm_frac + p.diurnal_frac +
                       p.cold_frac;
        EXPECT_LE(reuse, 1.0 + 1e-9) << p.name;
        EXPECT_GE(p.write_frac, 0.0);
        EXPECT_LE(p.write_frac, 1.0);
    }
}

TEST(JobProfileTest, SampleCoversArchetypes)
{
    FleetMix mix = typical_fleet_mix();
    Rng rng(15);
    std::vector<int> counts(mix.profiles.size(), 0);
    for (int i = 0; i < 5000; ++i)
        ++counts[mix.sample(rng)];
    for (std::size_t i = 0; i < counts.size(); ++i)
        EXPECT_GT(counts[i], 0) << mix.profiles[i].name;
}

TEST(JobProfileTest, LookupByName)
{
    JobProfile p = profile_by_name("kv_cache");
    EXPECT_EQ(p.name, "kv_cache");
}

// ----------------------------------------------------------------- job

TEST(JobTest, SizeWithinProfileRange)
{
    JobProfile profile = profile_by_name("web_frontend");
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Job job(1, profile, seed, 0);
        EXPECT_GE(job.memcg().num_pages(), profile.min_pages);
        EXPECT_LE(job.memcg().num_pages(), profile.max_pages);
    }
}

TEST(JobTest, StepChargesAppCycles)
{
    JobProfile profile = profile_by_name("bigtable");
    auto compressor = make_compressor(CompressionMode::kModeled);
    Zswap zswap(compressor.get(), 1);
    Job job(1, profile, 3, 0);
    JobStepStats stats = job.run_step(0, kMinute, zswap);
    EXPECT_GT(stats.accesses, 0u);
    EXPECT_DOUBLE_EQ(job.memcg().stats().app_cycles,
                     profile.cycles_per_access *
                         static_cast<double>(stats.accesses));
}

TEST(JobTest, BestEffortFlagPropagates)
{
    JobProfile profile = profile_by_name("batch_analytics");
    ASSERT_TRUE(profile.best_effort);
    Job job(1, profile, 3, 0);
    EXPECT_TRUE(job.memcg().best_effort());
}

// --------------------------------------------------------------- trace

TraceEntry
make_entry(JobId job, SimTime ts)
{
    TraceEntry entry;
    entry.job = job;
    entry.timestamp = ts;
    entry.wss_pages = 1234;
    entry.promo_delta.add(3, 7);
    entry.promo_delta.add(250, 1);
    entry.cold_hist.add(0, 100);
    entry.cold_hist.add(10, 50);
    entry.sli.zswap_promotions_delta = 5;
    entry.sli.zswap_stores_delta = 11;
    entry.sli.zswap_rejects_delta = 2;
    entry.sli.zswap_pages = 42;
    entry.sli.resident_pages = 999;
    entry.sli.cold_pages_min = 77;
    entry.sli.compressed_bytes = 123456;
    entry.sli.compress_cycles_delta = 1.5;
    entry.sli.decompress_cycles_delta = 2.5;
    entry.sli.app_cycles_delta = 1e9;
    entry.sli.decompress_latency_us_delta = 6.4;
    return entry;
}

TEST(TraceTest, SaveLoadRoundTrip)
{
    TraceLog log;
    log.append(make_entry(1, 300));
    log.append(make_entry(2, 300));
    log.append(make_entry(1, 600));

    std::stringstream ss;
    log.save(ss);

    TraceLog loaded;
    ASSERT_TRUE(loaded.load(ss));
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded.entries()[0], log.entries()[0]);
    EXPECT_EQ(loaded.entries()[2], log.entries()[2]);
}

TEST(TraceTest, ByJobGroupsAndSorts)
{
    TraceLog log;
    log.append(make_entry(2, 600));
    log.append(make_entry(1, 900));
    log.append(make_entry(2, 300));
    auto traces = log.by_job();
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].job, 1u);
    EXPECT_EQ(traces[1].job, 2u);
    ASSERT_EQ(traces[1].entries.size(), 2u);
    EXPECT_LT(traces[1].entries[0].timestamp,
              traces[1].entries[1].timestamp);
}

TEST(TraceTest, LoadRejectsGarbage)
{
    TraceLog log;
    std::stringstream ss("not a trace\n");
    EXPECT_FALSE(log.load(ss));
}

TEST(TraceTest, LoadRejectsMissingSli)
{
    TraceLog log;
    std::stringstream ss("E 1 300 10\nP\nC\n");
    EXPECT_FALSE(log.load(ss));
}

TEST(TraceTest, EmptyLogRoundTrip)
{
    TraceLog log;
    std::stringstream ss;
    log.save(ss);
    TraceLog loaded;
    EXPECT_TRUE(loaded.load(ss));
    EXPECT_TRUE(loaded.empty());
}

/**
 * Property: serialization round-trips over randomized entries.
 */
class TraceRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceRoundTrip, Randomized)
{
    Rng rng(GetParam());
    TraceLog log;
    std::size_t n = 1 + rng.next_below(30);
    for (std::size_t i = 0; i < n; ++i) {
        TraceEntry entry;
        entry.job = rng.next_below(5);
        entry.timestamp = static_cast<SimTime>(rng.next_below(100000));
        entry.wss_pages = rng.next_below(1 << 20);
        for (int b = 0; b < 8; ++b) {
            entry.promo_delta.add(
                static_cast<AgeBucket>(rng.next_below(256)),
                rng.next_below(1000));
            entry.cold_hist.add(
                static_cast<AgeBucket>(rng.next_below(256)),
                rng.next_below(1000));
        }
        entry.sli.zswap_pages = rng.next_below(1 << 16);
        entry.sli.app_cycles_delta = rng.next_double() * 1e12;
        log.append(entry);
    }
    std::stringstream ss;
    log.save(ss);
    TraceLog loaded;
    ASSERT_TRUE(loaded.load(ss));
    ASSERT_EQ(loaded.size(), log.size());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(loaded.entries()[i], log.entries()[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace sdfm
