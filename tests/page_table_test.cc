/**
 * @file
 * Tests for the struct-of-arrays PageTable: flag-bitset parity with
 * the historical PageMeta layout under randomized op sequences,
 * word-boundary and popcount edge cases, region-summary staleness
 * semantics (point writes widen, rebuilds tighten), SoA-vs-AoS digest
 * equality on a downscaled default fleet, and a full-machine
 * checkpoint round trip that crosses layouts mid-trajectory.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <string>

#include "ckpt/checkpoint.h"
#include "core/far_memory_system.h"
#include "mem/memcg.h"
#include "mem/page_table.h"
#include "util/digest.h"
#include "util/rng.h"
#include "workload/job_profile.h"

namespace sdfm {
namespace {

/** RAII override of the process-wide default layout. */
struct LayoutGuard
{
    explicit LayoutGuard(PageLayout layout) : saved(default_page_layout())
    {
        set_default_page_layout(layout);
    }
    ~LayoutGuard() { set_default_page_layout(saved); }
    PageLayout saved;
};

constexpr PageFlag kAllFlags[] = {
    kPageAccessed,        kPageDirty,   kPageUnevictable,
    kPageIncompressible,  kPageInZswap, kPageInFarTier,
};

std::uint64_t
table_digest(const PageTable &pt)
{
    StateDigest d;
    pt.state_digest(d);
    return d.value();
}

// ---------------------------------------------------------------------
// Layout parity
// ---------------------------------------------------------------------

TEST(PageTable, FreshTablesOfBothLayoutsAgree)
{
    PageTable soa(1000, PageLayout::kSoa);
    PageTable aos(1000, PageLayout::kAos);
    EXPECT_EQ(soa.size(), 1000u);
    EXPECT_EQ(aos.size(), 1000u);
    EXPECT_EQ(table_digest(soa), table_digest(aos));
    for (PageId p : {PageId{0}, PageId{63}, PageId{64}, PageId{999}}) {
        EXPECT_EQ(soa.age(p), aos.age(p));
        EXPECT_EQ(soa.flags(p), aos.flags(p));
        EXPECT_EQ(soa.content(p), aos.content(p));
        EXPECT_EQ(soa.content(p), ContentClass::kStructured);
        EXPECT_EQ(soa.version(p), aos.version(p));
    }
}

TEST(PageTable, RandomOpSequenceKeepsLayoutsIdentical)
{
    constexpr std::uint32_t kPages = 700;  // spans a partial region
    PageTable soa(kPages, PageLayout::kSoa);
    PageTable aos(kPages, PageLayout::kAos);
    Rng rng(7);

    for (int step = 0; step < 20000; ++step) {
        PageId p = static_cast<PageId>(rng.next_below(kPages));
        PageFlag f = kAllFlags[rng.next_below(6)];
        switch (rng.next_below(5)) {
          case 0:
            soa.set(p, f);
            aos.set(p, f);
            break;
          case 1:
            soa.clear(p, f);
            aos.clear(p, f);
            break;
          case 2: {
            std::uint8_t a = static_cast<std::uint8_t>(rng.next_below(256));
            soa.set_age(p, a);
            aos.set_age(p, a);
            break;
          }
          case 3:
            soa.bump_version(p);
            aos.bump_version(p);
            break;
          default:
            soa.set_content(p, static_cast<ContentClass>(
                                   rng.next_below(static_cast<std::uint32_t>(
                                       ContentClass::kNumClasses))));
            aos.set_content(p, soa.content(p));
            break;
        }
        EXPECT_EQ(soa.test(p, f), aos.test(p, f));
        EXPECT_EQ(soa.flags(p), aos.flags(p));
        EXPECT_EQ(soa.in_far_memory(p), aos.in_far_memory(p));
    }
    EXPECT_EQ(table_digest(soa), table_digest(aos));

    // And the wire bytes agree, both directions.
    Serializer ss;
    soa.ckpt_save(ss);
    Serializer sa;
    aos.ckpt_save(sa);
    EXPECT_EQ(ss.bytes(), sa.bytes());
}

// ---------------------------------------------------------------------
// Word-level edge cases
// ---------------------------------------------------------------------

TEST(PageTable, LiveMaskCoversPartialTailWord)
{
    for (std::uint32_t n : {63u, 64u, 65u, 128u, 700u}) {
        PageTable pt(n, PageLayout::kSoa);
        std::size_t words = (n + 63) / 64;
        EXPECT_EQ(pt.num_words(), words) << n;
        for (std::size_t w = 0; w + 1 < words; ++w)
            EXPECT_EQ(pt.live_mask(w), ~0ULL) << n << " word " << w;
        std::uint32_t rem = n - static_cast<std::uint32_t>(words - 1) * 64;
        std::uint64_t want =
            rem == 64 ? ~0ULL : (1ULL << rem) - 1;
        EXPECT_EQ(pt.live_mask(words - 1), want) << n;
    }
}

TEST(PageTable, TailBitsStayZeroAcrossSetsAtWordBoundaries)
{
    PageTable pt(65, PageLayout::kSoa);  // one full word + one bit
    pt.set(63, kPageAccessed);
    pt.set(64, kPageAccessed);
    EXPECT_TRUE(pt.test(63, kPageAccessed));
    EXPECT_TRUE(pt.test(64, kPageAccessed));
    EXPECT_FALSE(pt.test(62, kPageAccessed));
    EXPECT_EQ(pt.accessed_words()[0], 1ULL << 63);
    EXPECT_EQ(pt.accessed_words()[1], 1ULL);
    EXPECT_EQ(std::popcount(pt.accessed_words()[0]) +
                  std::popcount(pt.accessed_words()[1]),
              2);
    pt.clear(63, kPageAccessed);
    EXPECT_EQ(pt.accessed_words()[0], 0u);
    pt.check_invariants();
}

TEST(PageTable, FlagsGatherMatchesPopulationCounts)
{
    constexpr std::uint32_t kPages = 320;
    PageTable pt(kPages, PageLayout::kSoa);
    Rng rng(11);
    std::uint64_t expect_accessed = 0;
    for (PageId p = 0; p < kPages; ++p) {
        if (rng.next_bool(0.37)) {
            pt.set(p, kPageAccessed);
            ++expect_accessed;
        }
    }
    std::uint64_t pop = 0;
    for (std::size_t w = 0; w < pt.num_words(); ++w)
        pop += static_cast<std::uint64_t>(
            std::popcount(pt.accessed_words()[w]));
    EXPECT_EQ(pop, expect_accessed);
    std::uint64_t gathered = 0;
    for (PageId p = 0; p < kPages; ++p)
        if (pt.flags(p) & kPageAccessed)
            ++gathered;
    EXPECT_EQ(gathered, expect_accessed);
}

// ---------------------------------------------------------------------
// Region summaries
// ---------------------------------------------------------------------

TEST(PageTable, PointWritesWidenSummariesAndRebuildTightens)
{
    PageTable pt(2 * kPageRegionPages, PageLayout::kSoa);
    EXPECT_EQ(pt.num_summary_regions(), 2u);
    // Fresh table: all ages zero, summaries exact.
    EXPECT_EQ(pt.region_min_age(0), 0);
    EXPECT_EQ(pt.region_max_age(0), 0);

    // A point write widens the max bound but cannot shrink the min.
    pt.set_age(10, 200);
    EXPECT_EQ(pt.region_min_age(0), 0);
    EXPECT_EQ(pt.region_max_age(0), 200);
    EXPECT_EQ(pt.region_max_age(1), 0);  // other region untouched

    // Overwriting the only old page leaves a stale (conservative,
    // still sound) upper bound...
    pt.set_age(10, 3);
    EXPECT_EQ(pt.region_max_age(0), 200);
    // ...until a rebuild computes the exact bounds.
    pt.rebuild_region_summaries();
    EXPECT_EQ(pt.region_min_age(0), 0);
    EXPECT_EQ(pt.region_max_age(0), 3);
    pt.check_invariants();
}

TEST(PageTable, RegionAccessedOrSeesAnyBitInTheRegion)
{
    PageTable pt(2 * kPageRegionPages, PageLayout::kSoa);
    EXPECT_EQ(pt.region_accessed_or(0), 0u);
    EXPECT_EQ(pt.region_accessed_or(1), 0u);
    pt.set(kPageRegionPages + 17, kPageAccessed);
    EXPECT_EQ(pt.region_accessed_or(0), 0u);
    EXPECT_NE(pt.region_accessed_or(1), 0u);
}

// ---------------------------------------------------------------------
// Checkpoint wire format
// ---------------------------------------------------------------------

TEST(PageTable, CkptRoundTripRestoresEveryField)
{
    PageTable pt(130, PageLayout::kSoa);
    pt.set_age(0, 9);
    pt.set_age(129, 255);
    pt.set(5, kPageInZswap);
    pt.set(64, kPageInFarTier);
    pt.set(65, kPageUnevictable);
    pt.bump_version(7);
    pt.set_content(8, ContentClass::kZero);

    Serializer s;
    pt.ckpt_save(s);

    for (PageLayout layout : {PageLayout::kSoa, PageLayout::kAos}) {
        LayoutGuard guard(layout);
        PageTable back;
        std::uint64_t flagged_zswap = 0;
        std::uint64_t flagged_tier = 0;
        Deserializer d(s.bytes());
        ASSERT_TRUE(back.ckpt_load(d, flagged_zswap, flagged_tier));
        ASSERT_TRUE(d.at_end());
        EXPECT_EQ(back.layout(), layout);
        EXPECT_EQ(flagged_zswap, 1u);
        EXPECT_EQ(flagged_tier, 1u);
        EXPECT_EQ(back.size(), 130u);
        EXPECT_EQ(back.age(0), 9);
        EXPECT_EQ(back.age(129), 255);
        EXPECT_TRUE(back.test(5, kPageInZswap));
        EXPECT_TRUE(back.test(64, kPageInFarTier));
        EXPECT_TRUE(back.test(65, kPageUnevictable));
        EXPECT_EQ(back.version(7), 1u);
        EXPECT_EQ(back.content(8), ContentClass::kZero);
        EXPECT_EQ(table_digest(back), table_digest(pt));
        back.check_invariants();
        if (layout == PageLayout::kSoa) {
            // Summaries are rebuilt exactly on restore.
            EXPECT_EQ(back.region_max_age(0), 255);
            EXPECT_EQ(back.region_min_age(0), 0);
        }
    }
}

TEST(PageTable, CkptLoadRejectsUnknownFlagBitsAndBadContent)
{
    PageTable pt(4, PageLayout::kSoa);
    Serializer good;
    pt.ckpt_save(good);

    {  // flip an unknown (reserved) flag bit in page 0's record
        std::vector<std::uint8_t> bytes = good.bytes();
        // Wire: u64 count, then per page age u8, flags u8, ...
        bytes[8 + 1] = 0x40;
        PageTable back;
        std::uint64_t fz = 0;
        std::uint64_t ft = 0;
        Deserializer d(bytes);
        EXPECT_FALSE(back.ckpt_load(d, fz, ft));
    }
    {  // out-of-range content class
        std::vector<std::uint8_t> bytes = good.bytes();
        bytes[8 + 2] =
            static_cast<std::uint8_t>(ContentClass::kNumClasses);
        PageTable back;
        std::uint64_t fz = 0;
        std::uint64_t ft = 0;
        Deserializer d(bytes);
        EXPECT_FALSE(back.ckpt_load(d, fz, ft));
    }
}

// ---------------------------------------------------------------------
// Whole-fleet layout equivalence
// ---------------------------------------------------------------------

FleetConfig
small_fleet_config()
{
    FleetConfig config;
    config.num_clusters = 2;
    config.seed = 33;
    config.serial_step = true;
    config.cluster.num_machines = 3;
    config.cluster.machine.dram_pages = 16 * 1024;
    config.cluster.mix = typical_fleet_mix();
    return config;
}

TEST(PageTableFleet, SoaAndAosFleetsProduceIdenticalTrajectories)
{
    FleetConfig config = small_fleet_config();

    LayoutGuard soa_guard(PageLayout::kSoa);
    FarMemorySystem soa_fleet(config);
    soa_fleet.populate();

    set_default_page_layout(PageLayout::kAos);
    FarMemorySystem aos_fleet(config);
    aos_fleet.populate();
    set_default_page_layout(PageLayout::kSoa);

    EXPECT_EQ(soa_fleet.state_digest(), aos_fleet.state_digest());
    for (int i = 0; i < 20; ++i) {
        soa_fleet.step();
        aos_fleet.step();
        ASSERT_EQ(soa_fleet.state_digest(), aos_fleet.state_digest())
            << "layouts diverged at step " << i;
    }
}

TEST(PageTableFleet, CheckpointCrossesLayoutsMidTrajectory)
{
    std::string path = "page_table_layout.ckpt";
    FleetConfig config = small_fleet_config();

    // Run and checkpoint an SoA fleet...
    LayoutGuard guard(PageLayout::kSoa);
    FarMemorySystem reference(config);
    reference.populate();
    for (int i = 0; i < 5; ++i)
        reference.step();
    ASSERT_EQ(reference.checkpoint(path), CkptStatus::kOk);

    // ...restore it into an AoS fleet (checkpoint bytes are
    // layout-independent by contract)...
    set_default_page_layout(PageLayout::kAos);
    FarMemorySystem resumed(config);
    ASSERT_EQ(resumed.restore(path), CkptStatus::kOk);
    set_default_page_layout(PageLayout::kSoa);
    EXPECT_EQ(resumed.state_digest(), reference.state_digest());

    // ...and the AoS continuation must track the SoA original.
    for (int i = 0; i < 10; ++i) {
        reference.step();
        resumed.step();
        ASSERT_EQ(resumed.state_digest(), reference.state_digest())
            << "diverged " << i << " steps after cross-layout restore";
    }
    std::remove(path.c_str());
}

}  // namespace
}  // namespace sdfm
