/**
 * @file
 * Tests for the fault-injection framework and the graceful-degradation
 * machinery it exercises: circuit-breaker transitions, injector
 * determinism, checksum-detected zswap corruption, tier degradation
 * with retry/backoff, NVM media faults, agent crash/restart warmup
 * re-entry, donor-failure kill/reschedule, and the fleet-level fault
 * report.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/far_memory_system.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "mem/nvm_tier.h"
#include "mem/remote_tier.h"
#include "mem/zswap.h"
#include "node/machine.h"
#include "workload/job.h"

namespace sdfm {
namespace {

// ---------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------

TEST(CircuitBreaker, TripsAfterConsecutiveFailures)
{
    CircuitBreaker breaker;  // failure_threshold = 3
    EXPECT_FALSE(breaker.record_failure());
    EXPECT_FALSE(breaker.record_failure());
    breaker.record_success();  // resets the consecutive count
    EXPECT_FALSE(breaker.record_failure());
    EXPECT_FALSE(breaker.record_failure());
    EXPECT_TRUE(breaker.record_failure());
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_FALSE(breaker.allow());
    EXPECT_EQ(breaker.trial_budget(), 0u);
    EXPECT_EQ(breaker.stats().opens, 1u);
}

TEST(CircuitBreaker, HalfOpenProbeRecovers)
{
    CircuitBreakerParams params;
    params.failure_threshold = 1;
    params.open_periods = 2;
    CircuitBreaker breaker(params);
    EXPECT_TRUE(breaker.record_failure());
    breaker.tick();
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    breaker.tick();
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_EQ(breaker.trial_budget(), params.half_open_trials);
    breaker.record_success();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_EQ(breaker.stats().closes, 1u);
}

TEST(CircuitBreaker, ReopenGrowsHoldOffExponentially)
{
    CircuitBreakerParams params;
    params.failure_threshold = 1;
    params.open_periods = 2;
    params.backoff_factor = 2.0;
    params.max_open_periods = 5;
    CircuitBreaker breaker(params);

    EXPECT_TRUE(breaker.record_failure());  // open, hold-off 2
    breaker.tick();
    breaker.tick();
    ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_TRUE(breaker.record_failure());  // reopen, hold-off 4
    EXPECT_EQ(breaker.stats().reopens, 1u);
    for (int i = 0; i < 3; ++i) {
        breaker.tick();
        EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    }
    breaker.tick();
    ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_TRUE(breaker.record_failure());  // reopen, hold-off min(8,5)=5
    for (int i = 0; i < 4; ++i) {
        breaker.tick();
        EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    }
    breaker.tick();
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    // Recovery forgets the accumulated backoff.
    breaker.record_success();
    EXPECT_TRUE(breaker.record_failure());  // open again, hold-off 2
    breaker.tick();
    breaker.tick();
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, RecordsIgnoredWhileOpen)
{
    CircuitBreakerParams params;
    params.failure_threshold = 1;
    CircuitBreaker breaker(params);
    EXPECT_TRUE(breaker.record_failure());
    breaker.record_success();
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_FALSE(breaker.record_failure());
    EXPECT_EQ(breaker.stats().opens, 1u);
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

FaultConfig
probabilistic_config()
{
    FaultConfig config;
    config.enabled = true;
    config.donor_failure_prob = 0.2;
    config.zswap_corruption_prob = 0.3;
    config.agent_crash_prob = 0.1;
    return config;
}

std::vector<FaultKind>
kinds_over(FaultInjector &injector, int steps)
{
    std::vector<FaultKind> kinds;
    for (int i = 0; i < steps; ++i) {
        SimTime begin = i * kMinute;
        for (const FaultEvent &event :
             injector.step(begin, begin + kMinute))
            kinds.push_back(event.kind);
    }
    return kinds;
}

TEST(FaultInjector, DisabledProducesNothing)
{
    FaultConfig config = probabilistic_config();
    config.enabled = false;
    FaultInjector injector(config, 7);
    EXPECT_TRUE(kinds_over(injector, 100).empty());
    EXPECT_EQ(injector.stats().injected_total, 0u);
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultInjector a(probabilistic_config(), 7);
    FaultInjector b(probabilistic_config(), 7);
    std::vector<FaultKind> ka = kinds_over(a, 300);
    std::vector<FaultKind> kb = kinds_over(b, 300);
    EXPECT_FALSE(ka.empty());
    EXPECT_EQ(ka, kb);
    EXPECT_EQ(a.stats().injected_total, b.stats().injected_total);
}

TEST(FaultInjector, DifferentSeedDifferentSchedule)
{
    FaultInjector a(probabilistic_config(), 7);
    FaultInjector b(probabilistic_config(), 8);
    EXPECT_NE(kinds_over(a, 300), kinds_over(b, 300));
}

TEST(FaultInjector, ScheduledEventsFireOnceInTheirWindow)
{
    FaultConfig config;
    config.enabled = true;
    config.schedule.push_back(
        {500 * kMinute, {FaultKind::kAgentCrash, 1, 0}});
    config.schedule.push_back(
        {30, {FaultKind::kZswapCorruption, 2, 0}});  // before 1st window
    config.schedule.push_back(
        {90, {FaultKind::kDonorFailure, 1, 0}});
    FaultInjector injector(config, 1);

    // First window starts late; the t=30 event still fires in it.
    std::vector<FaultEvent> first = injector.step(kMinute, 2 * kMinute);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].kind, FaultKind::kZswapCorruption);
    EXPECT_EQ(first[0].magnitude, 2u);
    EXPECT_EQ(first[1].kind, FaultKind::kDonorFailure);

    for (int i = 2; i < 500; ++i) {
        EXPECT_TRUE(
            injector.step(i * kMinute, (i + 1) * kMinute).empty());
    }
    std::vector<FaultEvent> last =
        injector.step(500 * kMinute, 501 * kMinute);
    ASSERT_EQ(last.size(), 1u);
    EXPECT_EQ(last[0].kind, FaultKind::kAgentCrash);
    EXPECT_EQ(injector.stats().injected_total, 3u);
    EXPECT_EQ(injector.stats().agent_crashes, 1u);
}

// ---------------------------------------------------------------------
// Zswap corruption + checksum recovery
// ---------------------------------------------------------------------

struct ZswapRig
{
    explicit ZswapRig(std::uint32_t pages)
        : compressor(make_compressor(CompressionMode::kModeled)),
          zswap(compressor.get(), 1),
          cg(1, pages, 42, ContentMix::typical(), 0)
    {
    }

    std::unique_ptr<Compressor> compressor;
    Zswap zswap;
    Memcg cg;
};

TEST(ZswapCorruption, ChecksumCatchesCorruptionAndRefaults)
{
    ZswapRig rig(32);
    std::uint64_t stored = 0;
    for (PageId p = 0; p < 32; ++p) {
        if (rig.zswap.store(rig.cg, p))
            ++stored;
    }
    ASSERT_GT(stored, 0u);

    Rng rng(99);
    ASSERT_TRUE(rig.zswap.corrupt_entry(rng));
    EXPECT_EQ(rig.zswap.stats().corruptions_injected, 1u);

    // Promote everything: exactly one entry fails its checksum, the
    // page re-faults from backing store, and no load aborts.
    for (PageId p = 0; p < 32; ++p) {
        if (rig.cg.page_flags(p) & kPageInZswap)
            rig.zswap.load(rig.cg, p);
    }
    EXPECT_EQ(rig.zswap.stats().poisoned_entries, 1u);
    EXPECT_EQ(rig.cg.stats().far_refaults, 1u);
    EXPECT_GT(rig.cg.stats().refault_stall_cycles, 0.0);
    EXPECT_EQ(rig.cg.zswap_pages(), 0u);
    EXPECT_EQ(rig.cg.stats().zswap_promotions, stored);
}

TEST(ZswapCorruption, CorruptOnEmptyStoreIsHarmless)
{
    ZswapRig rig(4);
    Rng rng(5);
    EXPECT_FALSE(rig.zswap.corrupt_entry(rng));
    EXPECT_EQ(rig.zswap.stats().corruptions_injected, 0u);
}

// ---------------------------------------------------------------------
// Remote-tier retry/backoff
// ---------------------------------------------------------------------

TEST(RemoteRetry, DegradedReadsRetryWithBackoffAndExhaust)
{
    RemoteTierParams params;
    params.capacity_pages = 100;
    RemoteTier remote(params, 3);
    Memcg cg(1, 50, 42, ContentMix::typical(), 0);
    for (PageId p = 0; p < 50; ++p)
        ASSERT_TRUE(remote.store(cg, p));

    remote.set_transient_read_failure(1.0);
    double healthy_latency = cg.stats().nvm_read_latency_us_sum;
    for (PageId p = 0; p < 50; ++p)
        remote.load(cg, p);
    // Every read burned all retries, then completed anyway: the step
    // loop never aborts on a degraded tier.
    EXPECT_EQ(remote.stats().read_retries,
              50u * params.max_read_retries);
    EXPECT_EQ(remote.stats().reads_exhausted, 50u);
    EXPECT_EQ(remote.stats().read_failures,
              50u * (params.max_read_retries + 1));
    EXPECT_EQ(cg.stats().nvm_promotions, 50u);
    EXPECT_GT(cg.stats().nvm_read_latency_us_sum,
              healthy_latency + 50.0 * params.retry_backoff_base_us);

    // Healthy path draws no extra randomness and never retries.
    RemoteTier healthy(params, 3);
    Memcg cg2(2, 10, 42, ContentMix::typical(), 0);
    for (PageId p = 0; p < 10; ++p) {
        ASSERT_TRUE(healthy.store(cg2, p));
        healthy.load(cg2, p);
    }
    EXPECT_EQ(healthy.stats().read_retries, 0u);
    EXPECT_EQ(healthy.stats().read_failures, 0u);
}

// ---------------------------------------------------------------------
// NVM fault hooks
// ---------------------------------------------------------------------

TEST(NvmFaults, MediaErrorRefaultsFromBackingStore)
{
    NvmTierParams params;
    params.capacity_pages = 10;
    NvmTier nvm(params, 3);
    Memcg cg(1, 10, 42, ContentMix::typical(), 0);
    ASSERT_TRUE(nvm.store(cg, 0));
    ASSERT_TRUE(nvm.store(cg, 1));
    nvm.inject_media_errors(1);
    nvm.load(cg, 0);  // consumes the pending error
    nvm.load(cg, 1);  // healthy
    EXPECT_EQ(nvm.stats().media_errors, 1u);
    EXPECT_EQ(cg.stats().far_refaults, 1u);
    EXPECT_GT(cg.stats().refault_stall_cycles, 0.0);
    EXPECT_EQ(cg.stats().nvm_promotions, 2u);
}

TEST(NvmFaults, LatencyMultiplierScalesReads)
{
    NvmTierParams params;
    params.capacity_pages = 100;
    NvmTier slow(params, 3);
    NvmTier fast(params, 3);  // same seed: identical jitter draws
    slow.set_latency_multiplier(8.0);
    Memcg cg_slow(1, 50, 42, ContentMix::typical(), 0);
    Memcg cg_fast(2, 50, 42, ContentMix::typical(), 0);
    for (PageId p = 0; p < 50; ++p) {
        ASSERT_TRUE(slow.store(cg_slow, p));
        ASSERT_TRUE(fast.store(cg_fast, p));
        slow.load(cg_slow, p);
        fast.load(cg_fast, p);
    }
    EXPECT_DOUBLE_EQ(cg_slow.stats().nvm_read_latency_us_sum,
                     8.0 * cg_fast.stats().nvm_read_latency_us_sum);
}

TEST(NvmFaults, LoseCapacityReportsOverflow)
{
    NvmTierParams params;
    params.capacity_pages = 100;
    NvmTier nvm(params, 3);
    Memcg cg(1, 100, 42, ContentMix::typical(), 0);
    for (PageId p = 0; p < 80; ++p)
        ASSERT_TRUE(nvm.store(cg, p));
    std::uint64_t overflow = nvm.lose_capacity(0.5);
    EXPECT_EQ(nvm.capacity_pages(), 50u);
    EXPECT_EQ(overflow, 30u);
    EXPECT_EQ(nvm.stats().capacity_lost_pages, 50u);
    EXPECT_FALSE(nvm.has_space());
}

// ---------------------------------------------------------------------
// Machine-level fault plane
// ---------------------------------------------------------------------

MachineConfig
static_machine_config()
{
    MachineConfig config;
    config.dram_pages = 128ull * kMiB / kPageSize;
    config.policy = FarMemoryPolicy::kStatic;
    config.static_threshold = 2;
    config.slo.enable_delay = 0;
    return config;
}

TEST(FaultMachine, CorruptionScheduleSurvivesStepLoop)
{
    MachineConfig config = static_machine_config();
    config.fault.enabled = true;
    config.fault.zswap_corruption_prob = 0.5;
    config.fault.corruption_batch = 8;
    Machine machine(0, config, 11);
    machine.add_job(
        std::make_unique<Job>(1, profile_by_name("logs"), 7, 0));
    machine.add_job(
        std::make_unique<Job>(2, profile_by_name("web_frontend"), 8, 0));

    for (SimTime now = 0; now < 3 * kHour; now += kMinute)
        machine.step(now);

    EXPECT_GT(machine.fault_injector().stats().zswap_corruptions, 0u);
    EXPECT_GT(machine.zswap().stats().corruptions_injected, 0u);
    // Corrupted entries were promoted at some point and recovered via
    // re-fault -- visible in the exported counter, and nothing
    // aborted the step loop to get here.
    EXPECT_GT(machine.zswap().stats().poisoned_entries, 0u);
    EXPECT_EQ(
        machine.metrics().snapshot().counter_or_zero(
            "zswap.poisoned_entries"),
        machine.zswap().stats().poisoned_entries);
}

TEST(FaultMachine, RemoteDegradeDrivesRetriesAndTierBreaker)
{
    MachineConfig config = static_machine_config();
    config.remote.capacity_pages = 1 << 20;
    config.tier_breaker_enabled = true;
    config.fault.enabled = true;
    config.fault.remote_read_failure_prob = 1.0;
    config.fault.degrade_duration = 20 * kMinute;
    config.fault.schedule.push_back(
        {10 * kMinute, {FaultKind::kRemoteDegrade, 1, 20 * kMinute}});
    Machine machine(0, config, 13);
    machine.add_job(
        std::make_unique<Job>(1, profile_by_name("logs"), 7, 0));
    machine.add_job(
        std::make_unique<Job>(2, profile_by_name("kv_cache"), 8, 0));

    for (SimTime now = 0; now < 2 * kHour; now += kMinute)
        machine.step(now);

    std::size_t ri = machine.tiers().find(TierKind::kRemote);
    ASSERT_LT(ri, machine.tiers().size());
    RemoteTier *remote =
        static_cast<RemoteTier *>(&machine.tiers().tier(ri));
    // The degrade window produced failed reads, bounded retries, and
    // exhausted reads that still completed.
    EXPECT_GT(remote->stats().read_retries, 0u);
    EXPECT_GT(remote->stats().reads_exhausted, 0u);
    // The tier breaker opened during the window and recovered after
    // it ended (the degradation expired well before the run did).
    EXPECT_GE(machine.tier_breaker().stats().opens, 1u);
    EXPECT_GE(machine.tier_breaker().stats().closes, 1u);
    EXPECT_EQ(machine.tier_breaker().state(), BreakerState::kClosed);
    EXPECT_DOUBLE_EQ(remote->transient_read_failure(), 0.0);
    // Recovery is visible in the metrics plane.
    MetricsSnapshot snap = machine.metrics().snapshot();
    EXPECT_GT(snap.counter_or_zero("fault.remote_read_retries"), 0u);
    EXPECT_GT(snap.counter_or_zero("fault.tier_breaker_opens"), 0u);
}

TEST(FaultMachine, NvmCapacityLossSpillsToZswap)
{
    MachineConfig config = static_machine_config();
    // Small enough that the tier is full when the loss hits, so the
    // surviving capacity cannot hold the resident tier pages.
    config.nvm.capacity_pages = 8192;
    config.fault.enabled = true;
    config.fault.capacity_loss_frac = 0.95;
    config.fault.schedule.push_back(
        {30 * kMinute, {FaultKind::kNvmCapacityLoss, 1, 0}});
    Machine machine(0, config, 17);
    machine.add_job(
        std::make_unique<Job>(1, profile_by_name("logs"), 7, 0));

    for (SimTime now = 0; now < kHour; now += kMinute)
        machine.step(now);

    MetricsSnapshot snap = machine.metrics().snapshot();
    EXPECT_GT(snap.counter_or_zero("fault.nvm_capacity_lost_pages"), 0u);
    EXPECT_GT(snap.counter_or_zero("fault.nvm_spillover_pages"), 0u);
    std::size_t ni = machine.tiers().find(TierKind::kNvm);
    ASSERT_LT(ni, machine.tiers().size());
    NvmTier *nvm = static_cast<NvmTier *>(&machine.tiers().tier(ni));
    EXPECT_LT(nvm->capacity_pages(), 8192u);
    // The spilled pages are in zswap, not lost.
    EXPECT_GT(machine.zswap_stored_pages(), 0u);
}

TEST(FaultMachine, AgentCrashReentersWarmup)
{
    MachineConfig config = static_machine_config();
    config.slo.enable_delay = 10 * kMinute;
    Machine machine(0, config, 19);
    Job &job = machine.add_job(
        std::make_unique<Job>(1, profile_by_name("logs"), 7, 0));

    SimTime now = 0;
    for (; now < 20 * kMinute; now += kMinute)
        machine.step(now);
    ASSERT_EQ(job.memcg().reclaim_threshold(), config.static_threshold);

    machine.crash_agent(now);
    EXPECT_EQ(machine.agent().stats().restarts, 1u);
    EXPECT_EQ(job.memcg().reclaim_threshold(), 0u);
    EXPECT_FALSE(job.memcg().zswap_enabled());

    // Still inside the re-entered S-second warmup: threshold stays 0.
    SimTime restart = now;
    for (; now < restart + config.slo.enable_delay - kMinute;
         now += kMinute) {
        machine.step(now);
        EXPECT_EQ(job.memcg().reclaim_threshold(), 0u);
    }
    // Once the warmup elapses, reclaim resumes.
    for (; now < restart + config.slo.enable_delay + 2 * kMinute;
         now += kMinute)
        machine.step(now);
    EXPECT_EQ(job.memcg().reclaim_threshold(), config.static_threshold);
}

TEST(FaultMachine, ScheduledAgentCrashCountsInTelemetry)
{
    MachineConfig config = static_machine_config();
    config.fault.enabled = true;
    config.fault.schedule.push_back(
        {15 * kMinute, {FaultKind::kAgentCrash, 1, 0}});
    Machine machine(0, config, 23);
    machine.add_job(
        std::make_unique<Job>(1, profile_by_name("logs"), 7, 0));
    for (SimTime now = 0; now < kHour; now += kMinute)
        machine.step(now);
    EXPECT_EQ(machine.fault_injector().stats().agent_crashes, 1u);
    EXPECT_EQ(machine.agent().stats().restarts, 1u);
    EXPECT_EQ(machine.metrics().snapshot().counter_or_zero(
                  "agent.restarts"),
              1u);
}

// ---------------------------------------------------------------------
// Per-job SLO breaker
// ---------------------------------------------------------------------

TEST(SloBreaker, DisablesZswapAfterConsecutiveBreaches)
{
    NodeAgentConfig config;
    config.policy = FarMemoryPolicy::kStatic;
    config.static_threshold = 4;
    config.slo.enable_delay = 0;
    config.slo_breaker_enabled = true;
    config.slo_breaker.failure_threshold = 3;
    config.slo_breaker.open_periods = 4;
    NodeAgent agent(config);

    Memcg cg(1, 1000, 42, ContentMix::typical(), 0);
    cg.mutable_cold_hist().add(0, 1000);  // WSS = 1000 pages
    agent.register_job(cg);
    std::vector<Memcg *> jobs = {&cg};

    // Three consecutive periods far above the 0.2%/min SLO trip the
    // breaker; zswap is then forced off despite the static policy.
    SimTime now = kMinute;
    for (int round = 0; round < 3; ++round, now += kMinute) {
        cg.stats().zswap_promotions += 100;  // 10% of WSS per minute
        agent.control(now, jobs, 1.0);
    }
    EXPECT_EQ(agent.stats().slo_breaker_trips, 1u);
    EXPECT_EQ(cg.reclaim_threshold(), 0u);
    EXPECT_FALSE(cg.zswap_enabled());

    // The breaker holds zswap off while open (the trip round itself
    // counts as the first open period), then a healthy half-open
    // probe restores the static threshold and closes the breaker.
    for (int round = 0; round < 2; ++round, now += kMinute) {
        agent.control(now, jobs, 1.0);
        EXPECT_EQ(cg.reclaim_threshold(), 0u);
    }
    agent.control(now, jobs, 1.0);  // half-open probe re-admits zswap
    EXPECT_EQ(cg.reclaim_threshold(), config.static_threshold);
    EXPECT_TRUE(cg.zswap_enabled());
    agent.control(now + kMinute, jobs, 1.0);  // probe succeeded: closed
    EXPECT_EQ(cg.reclaim_threshold(), config.static_threshold);
}

TEST(SloBreaker, CrashRestartResetsConsecutiveBreachCount)
{
    NodeAgentConfig config;
    config.policy = FarMemoryPolicy::kStatic;
    config.static_threshold = 4;
    config.slo.enable_delay = 0;
    config.slo_breaker_enabled = true;
    config.slo_breaker.failure_threshold = 3;
    config.slo_breaker.open_periods = 4;
    NodeAgent agent(config);

    Memcg cg(1, 1000, 42, ContentMix::typical(), 0);
    cg.mutable_cold_hist().add(0, 1000);  // WSS = 1000 pages
    agent.register_job(cg);
    std::vector<Memcg *> jobs = {&cg};

    // Two breach periods: one short of the threshold of three.
    SimTime now = kMinute;
    for (int round = 0; round < 2; ++round, now += kMinute) {
        cg.stats().zswap_promotions += 100;  // 10% of WSS per minute
        agent.control(now, jobs, 1.0);
    }
    EXPECT_EQ(agent.stats().slo_breaker_trips, 0u);

    // An agent crash loses the in-memory breach count: the restarted
    // agent starts every job's breaker from a clean closed state.
    agent.crash_restart(now, jobs);
    const CircuitBreaker *breaker = agent.slo_breaker_of(1);
    ASSERT_NE(breaker, nullptr);
    EXPECT_EQ(breaker->state(), BreakerState::kClosed);
    EXPECT_EQ(breaker->stats().opens, 0u);

    // Two more breaches after the restart: four consecutive breaches
    // spanned the crash, which would have tripped a surviving counter
    // -- the reset means the breaker must still be closed.
    for (int round = 0; round < 2; ++round, now += kMinute) {
        cg.stats().zswap_promotions += 100;
        agent.control(now, jobs, 1.0);
    }
    EXPECT_EQ(agent.stats().slo_breaker_trips, 0u);
    EXPECT_EQ(agent.slo_breaker_of(1)->state(), BreakerState::kClosed);

    // A third post-crash breach completes a fresh run of three and
    // trips normally, proving the reset didn't disable the breaker.
    cg.stats().zswap_promotions += 100;
    agent.control(now, jobs, 1.0);
    EXPECT_EQ(agent.stats().slo_breaker_trips, 1u);
    EXPECT_EQ(agent.slo_breaker_of(1)->state(), BreakerState::kOpen);
    EXPECT_FALSE(cg.zswap_enabled());
}

TEST(SloBreaker, ConfigDeploymentResetsConsecutiveBreachCount)
{
    NodeAgentConfig config;
    config.policy = FarMemoryPolicy::kStatic;
    config.static_threshold = 4;
    config.slo.enable_delay = 0;
    config.slo_breaker_enabled = true;
    config.slo_breaker.failure_threshold = 3;
    config.slo_breaker.open_periods = 4;
    NodeAgent agent(config);

    Memcg cg(1, 1000, 42, ContentMix::typical(), 0);
    cg.mutable_cold_hist().add(0, 1000);  // WSS = 1000 pages
    agent.register_job(cg);
    std::vector<Memcg *> jobs = {&cg};

    // Two breach periods under the old tunables: one short of the
    // threshold of three.
    SimTime now = kMinute;
    for (int round = 0; round < 2; ++round, now += kMinute) {
        cg.stats().zswap_promotions += 100;  // 10% of WSS per minute
        agent.control(now, jobs, 1.0);
    }
    EXPECT_EQ(agent.stats().slo_breaker_trips, 0u);

    // A new config deploys (autotuner / rollout path). Breaches
    // accumulated under the old tunables must not count toward
    // tripping under the new ones: one more breach is a fresh streak
    // of one, not the completion of a streak of three.
    SloConfig slo = config.slo;
    slo.percentile_k = 95.0;
    agent.deploy_slo(now, slo, /*epoch=*/1, /*conservative=*/false,
                     jobs);
    EXPECT_EQ(agent.config_epoch(), 1u);

    cg.stats().zswap_promotions += 100;
    agent.control(now, jobs, 1.0);
    now += kMinute;
    EXPECT_EQ(agent.stats().slo_breaker_trips, 0u);
    EXPECT_EQ(agent.slo_breaker_of(1)->state(), BreakerState::kClosed);

    // Two more breaches complete a fresh run of three under the new
    // config and trip normally -- the reset didn't disable the
    // breaker.
    for (int round = 0; round < 2; ++round, now += kMinute) {
        cg.stats().zswap_promotions += 100;
        agent.control(now, jobs, 1.0);
    }
    EXPECT_EQ(agent.stats().slo_breaker_trips, 1u);
    EXPECT_EQ(agent.slo_breaker_of(1)->state(), BreakerState::kOpen);
}

// ---------------------------------------------------------------------
// Cluster-level donor failure (the previously dormant fail_donor path)
// ---------------------------------------------------------------------

ClusterConfig
remote_cluster_config()
{
    ClusterConfig config;
    config.num_machines = 4;
    config.machine = static_machine_config();
    config.machine.dram_pages = 16 * 1024;
    config.machine.remote.capacity_pages = 1 << 20;
    config.target_utilization = 0.6;
    config.churn_per_hour = 0.0;
    config.mix = typical_fleet_mix();
    return config;
}

TEST(FaultCluster, InjectedDonorFailureKillsAndReschedules)
{
    Cluster cluster(0, remote_cluster_config(), 29);
    cluster.populate(0);
    SimTime now = 0;
    for (; now < 30 * kMinute; now += kMinute)
        cluster.step(now);

    // Find a donor actually hosting pages so the failure has victims.
    std::uint32_t machine_index = 0, donor = 0;
    bool found = false;
    for (std::uint32_t m = 0;
         m < cluster.machines().size() && !found; ++m) {
        TierStack &tiers = cluster.machines()[m]->tiers();
        std::size_t ri = tiers.find(TierKind::kRemote);
        ASSERT_LT(ri, tiers.size());
        RemoteTier *remote =
            static_cast<RemoteTier *>(&tiers.tier(ri));
        for (std::uint32_t d = 0; d < remote->params().num_donors; ++d) {
            if (remote->donor_pages(d) > 0) {
                machine_index = m;
                donor = d;
                found = true;
                break;
            }
        }
    }
    ASSERT_TRUE(found) << "no donor hosts pages after 30 minutes";

    std::uint64_t jobs_before = cluster.num_jobs();
    DonorFailureResult result =
        cluster.inject_donor_failure(now, machine_index, donor);
    EXPECT_FALSE(result.killed.empty());
    // Victims restart fresh elsewhere: the fleet heals to the same
    // job count.
    EXPECT_EQ(result.rescheduled, result.killed.size());
    EXPECT_EQ(cluster.num_jobs(), jobs_before);
    // The victims are really gone (killed, not migrated).
    for (JobId victim : result.killed) {
        for (auto &machine : cluster.machines())
            EXPECT_EQ(machine->find_job(victim), nullptr);
    }
    // And the step loop keeps running afterwards.
    for (; now < 40 * kMinute; now += kMinute)
        cluster.step(now);
}

// ---------------------------------------------------------------------
// Fleet-level determinism + fault report
// ---------------------------------------------------------------------

FleetConfig
chaos_fleet_config()
{
    FleetConfig config;
    config.num_clusters = 2;
    config.cluster.num_machines = 3;
    config.cluster.machine = static_machine_config();
    config.cluster.machine.dram_pages = 16 * 1024;
    config.cluster.machine.remote.capacity_pages = 1 << 20;
    config.cluster.mix = typical_fleet_mix();
    config.cluster.machine.fault.enabled = true;
    config.cluster.machine.fault.donor_failure_prob = 0.05;
    config.cluster.machine.fault.zswap_corruption_prob = 0.3;
    config.cluster.machine.fault.agent_crash_prob = 0.02;
    config.seed = 31;
    return config;
}

TEST(FleetFaults, ReportSurfacesRecoveryAndIsDeterministic)
{
    FarMemorySystem a(chaos_fleet_config());
    FarMemorySystem b(chaos_fleet_config());
    a.populate();
    b.populate();
    a.run(kHour);
    b.run(kHour);

    FleetFaultReport ra = a.fault_report();
    FleetFaultReport rb = b.fault_report();
    // Faults fired and the fleet survived a full hour of them. (With
    // a remote tier configured, moderately-cold pages land there
    // before reaching zswap's deep threshold, so corruption events
    // often find zswap empty -- donor failures and agent crashes are
    // the robust signals here.)
    EXPECT_GT(ra.faults_injected, 0u);
    EXPECT_GT(ra.donor_failures, 0u);
    EXPECT_GT(ra.agent_restarts, 0u);
    EXPECT_GT(a.num_jobs(), 0u);
    // Same seed, same chaos: the whole trajectory is reproducible.
    EXPECT_EQ(ra.faults_injected, rb.faults_injected);
    EXPECT_EQ(ra.donor_failures, rb.donor_failures);
    EXPECT_EQ(ra.jobs_killed, rb.jobs_killed);
    EXPECT_EQ(ra.corruptions, rb.corruptions);
    EXPECT_EQ(ra.poisoned_entries, rb.poisoned_entries);
    EXPECT_EQ(ra.agent_restarts, rb.agent_restarts);
    EXPECT_DOUBLE_EQ(a.fleet_coverage(), b.fleet_coverage());
}

}  // namespace
}  // namespace sdfm
